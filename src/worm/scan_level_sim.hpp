// Scan-level worm simulator: one discrete event per scan packet.
//
// This is the ground-truth engine (paper §V): V hosts get random addresses
// in the universe, each infected host emits scans as a Poisson process of
// rate `scan_rate`, every scan passes through the containment policy, and a
// scan that lands on a susceptible address infects it.  Exact but O(scans);
// for Monte Carlo over thousands of runs use HitLevelSimulation, which is
// provably equivalent for uniform scanning (ablation A1).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/containment_policy.hpp"
#include "net/graph/topology.hpp"
#include "net/host_registry.hpp"
#include "sim/engine.hpp"
#include "worm/config.hpp"
#include "worm/observer.hpp"
#include "worm/result.hpp"
#include "worm/scan_target.hpp"

namespace worms::worm {

enum class HostState : std::uint8_t { Susceptible, Infected, Removed };

class ScanLevelSimulation {
 public:
  /// `policy` may be null (no containment).  The registry (random host
  /// addresses) is built from `seed`; all scan randomness also derives from
  /// it, so equal seeds reproduce runs bit-for-bit.
  ScanLevelSimulation(const WormConfig& config,
                      std::unique_ptr<core::ContainmentPolicy> policy, std::uint64_t seed);

  /// Topology-aware variant: hosts are the topology's nodes (identity
  /// addressing, so `config.vulnerable_hosts` must equal the node count and
  /// fit the configured address width) and scans pick targets per
  /// `graph_options` through the GraphScanTarget seam.  The topology is
  /// shared read-only — one instance can back every run of a Monte Carlo
  /// sweep.  Requires `config.strategy == ScanStrategy::Uniform` (the flat
  /// strategies don't compose with neighbor scanning) and no clustering.
  ScanLevelSimulation(const WormConfig& config,
                      std::shared_ptr<const net::GraphTopology> topology,
                      const GraphWormOptions& graph_options,
                      std::unique_ptr<core::ContainmentPolicy> policy, std::uint64_t seed);

  /// Observers outlive the simulation; not owned.
  void add_observer(OutbreakObserver* observer);

  /// Runs to quiescence (queue drained), the horizon, or the configured
  /// infection cap, whichever is first.  Call at most once: a second call
  /// throws support::PreconditionError (enforced, not just documented).
  [[nodiscard]] OutbreakResult run(sim::SimTime horizon = 1e300);

  [[nodiscard]] const net::HostRegistry& registry() const noexcept { return registry_; }
  [[nodiscard]] const WormConfig& config() const noexcept { return config_; }
  [[nodiscard]] core::ContainmentPolicy& policy() noexcept { return *policy_; }
  [[nodiscard]] HostState state_of(net::HostId id) const { return state_.at(id); }
  [[nodiscard]] std::uint32_t generation_of(net::HostId id) const { return generation_.at(id); }

  /// True while a benign host is offline for checking (false positive).
  [[nodiscard]] bool benign_offline(std::uint32_t benign_index) const {
    return benign_offline_.at(benign_index);
  }

 private:
  struct Event {
    enum class Kind : std::uint8_t { Scan, DelayedScan, BenignConn, BenignRestore, CycleSweep } kind;
    net::HostId host;      // vulnerable-host id, or benign index for Benign*
    std::uint32_t target;  // DelayedScan carries the already-chosen target
  };

  void init_common();
  void infect(net::HostId id, net::HostId parent, std::uint32_t generation, sim::SimTime now);
  void remove(net::HostId id, sim::SimTime now);
  void deliver_scan(net::HostId source, net::Ipv4Address target, sim::SimTime now);
  void schedule_next_scan(net::HostId id, sim::SimTime now);
  void handle(sim::SimTime now, const Event& ev);
  void handle_benign_connection(std::uint32_t index, sim::SimTime now);
  void schedule_benign_connection(std::uint32_t index, sim::SimTime now);
  /// Policy host id for benign host `index` (benign ids follow worm ids).
  [[nodiscard]] net::HostId benign_policy_id(std::uint32_t index) const noexcept {
    return config_.vulnerable_hosts + index;
  }

  WormConfig config_;
  std::unique_ptr<core::ContainmentPolicy> policy_;
  support::Rng rng_;
  net::HostRegistry registry_;
  // Null for flat runs; shared so Monte Carlo sweeps reuse one CSR read-only.
  std::shared_ptr<const net::GraphTopology> topology_;
  GraphWormOptions graph_options_;
  // Target selection seam: FlatScanTarget (the paper's strategies, draw
  // sequence unchanged) or GraphScanTarget (neighbor scanning).
  std::unique_ptr<ScanTarget> scan_target_;
  sim::Engine<Event> engine_;

  std::vector<HostState> state_;
  std::vector<std::uint32_t> generation_;
  std::vector<sim::SimTime> infected_at_;
  std::vector<OutbreakObserver*> observers_;

  // Benign background hosts (indexed 0..benign.host_count-1).
  std::vector<bool> benign_offline_;
  std::vector<std::vector<std::uint32_t>> benign_working_set_;

  OutbreakResult result_;
  std::uint64_t active_infected_ = 0;
  bool ran_ = false;
};

}  // namespace worms::worm
