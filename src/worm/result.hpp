// Outcome summary shared by both worm simulators.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace worms::worm {

struct OutbreakResult {
  std::uint64_t total_infected = 0;  ///< I: every host ever infected (incl. initial)
  std::uint64_t total_removed = 0;   ///< hosts taken offline by containment
  std::uint64_t peak_active = 0;     ///< max simultaneous infectious hosts
  std::uint64_t total_scans = 0;     ///< scan packets that reached the network
  sim::SimTime end_time = 0.0;

  /// True when the outbreak ended with no active infectious host left —
  /// i.e. the worm was contained (every infected host removed) or died out.
  bool contained = false;

  /// True when the run stopped because it hit stop_at_total_infected.
  bool hit_infection_cap = false;

  /// I_n per generation n (index 0 = the initial hosts).
  std::vector<std::uint64_t> generation_sizes;

  // ---- benign-traffic metrics (scan-level engine with BenignTrafficModel) ----
  std::uint64_t benign_connections = 0;    ///< clean connections that went out
  std::uint64_t benign_false_removals = 0; ///< clean hosts the policy pulled
  std::uint64_t benign_restored = 0;       ///< of those, restored after checking
};

}  // namespace worms::worm
