// Observer hooks shared by both worm simulators, plus the two recorders the
// figure benches use (sample paths for Figs. 9/10, generations for Fig. 2).
#pragma once

#include <cstdint>
#include <vector>

#include "net/host_registry.hpp"
#include "sim/time.hpp"

namespace worms::worm {

inline constexpr net::HostId kNoParent = net::kNoHost;

class OutbreakObserver {
 public:
  virtual ~OutbreakObserver() = default;

  /// `parent` is kNoParent for initial (generation-0) infections.
  virtual void on_infection(sim::SimTime now, net::HostId host, net::HostId parent,
                            std::uint32_t generation);

  /// The host hit its scan budget (or a baseline policy pulled it) and is
  /// offline for checking.
  virtual void on_removal(sim::SimTime now, net::HostId host);

  virtual void on_finished(sim::SimTime end_time);
};

/// Time series of (cumulative infected, cumulative removed, active infected),
/// appended at every state-changing event — the exact quantities plotted in
/// the paper's Figures 9 and 10.
class SamplePathRecorder final : public OutbreakObserver {
 public:
  struct Point {
    sim::SimTime time;
    std::uint64_t cumulative_infected;
    std::uint64_t cumulative_removed;
    std::uint64_t active_infected;
  };

  void on_infection(sim::SimTime now, net::HostId host, net::HostId parent,
                    std::uint32_t generation) override;
  void on_removal(sim::SimTime now, net::HostId host) override;

  [[nodiscard]] const std::vector<Point>& points() const noexcept { return points_; }
  [[nodiscard]] std::uint64_t peak_active() const noexcept { return peak_active_; }

 private:
  std::vector<Point> points_;
  std::uint64_t infected_ = 0;
  std::uint64_t removed_ = 0;
  std::uint64_t peak_active_ = 0;
};

/// Per-generation bookkeeping: sizes and infection instants (Fig. 2 plots the
/// growth curve with hosts labelled by generation).
class GenerationRecorder final : public OutbreakObserver {
 public:
  struct Infection {
    sim::SimTime time;
    std::uint32_t generation;
  };

  void on_infection(sim::SimTime now, net::HostId host, net::HostId parent,
                    std::uint32_t generation) override;

  [[nodiscard]] const std::vector<Infection>& infections() const noexcept { return infections_; }
  [[nodiscard]] const std::vector<std::uint64_t>& generation_sizes() const noexcept {
    return sizes_;
  }
  /// First infection instant of each generation (index = generation).
  [[nodiscard]] const std::vector<sim::SimTime>& first_infection_times() const noexcept {
    return first_times_;
  }

 private:
  std::vector<Infection> infections_;
  std::vector<std::uint64_t> sizes_;
  std::vector<sim::SimTime> first_times_;
};

}  // namespace worms::worm
