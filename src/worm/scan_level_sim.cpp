#include "worm/scan_level_sim.hpp"

#include <cmath>

#include "stats/samplers.hpp"
#include "support/check.hpp"

namespace worms::worm {

namespace {

/// Graph runs address hosts by node id; the registry is a bounds check, not
/// a table.  Kept out of the constructor so the null-topology precondition
/// fires before any dereference in the member-init list.
net::HostRegistry identity_registry_for(const std::shared_ptr<const net::GraphTopology>& t,
                                        int address_bits) {
  WORMS_EXPECTS(t != nullptr);
  return net::HostRegistry::identity(net::AddressSpace(address_bits), t->node_count());
}

}  // namespace

ScanLevelSimulation::ScanLevelSimulation(const WormConfig& config,
                                         std::unique_ptr<core::ContainmentPolicy> policy,
                                         std::uint64_t seed)
    : config_(config),
      policy_(policy ? std::move(policy) : std::make_unique<core::NullPolicy>()),
      rng_(seed),
      registry_(net::AddressSpace(config.address_bits), config.vulnerable_hosts, rng_,
                config.clustered()
                    ? std::optional(net::ClusterSpec{config.cluster_prefix_length,
                                                     config.cluster_count})
                    : std::nullopt) {
  if (config.strategy == ScanStrategy::LocalPreference) {
    WORMS_EXPECTS(config.local_preference_probability >= 0.0 &&
                  config.local_preference_probability <= 1.0);
    WORMS_EXPECTS(config.local_prefix_length >= 32 - config.address_bits &&
                  config.local_prefix_length <= 32);
  }
  init_common();
  // FlatScanTarget's constructor performs the permutation-state draws at
  // exactly this point of the stream, as the pre-seam engine did.
  scan_target_ = std::make_unique<FlatScanTarget>(config_, registry_, rng_);
}

ScanLevelSimulation::ScanLevelSimulation(const WormConfig& config,
                                         std::shared_ptr<const net::GraphTopology> topology,
                                         const GraphWormOptions& graph_options,
                                         std::unique_ptr<core::ContainmentPolicy> policy,
                                         std::uint64_t seed)
    : config_(config),
      policy_(policy ? std::move(policy) : std::make_unique<core::NullPolicy>()),
      rng_(seed),
      registry_(identity_registry_for(topology, config.address_bits)),
      topology_(std::move(topology)),
      graph_options_(graph_options) {
  WORMS_EXPECTS(config.vulnerable_hosts == topology_->node_count());
  WORMS_EXPECTS(config.strategy == ScanStrategy::Uniform);
  WORMS_EXPECTS(!config.clustered());
  init_common();
  scan_target_ = std::make_unique<GraphScanTarget>(*topology_, registry_, graph_options_);
}

void ScanLevelSimulation::init_common() {
  WORMS_EXPECTS(config_.vulnerable_hosts >= 1);
  WORMS_EXPECTS(config_.initial_infected >= 1);
  WORMS_EXPECTS(config_.initial_infected <= config_.vulnerable_hosts);
  WORMS_EXPECTS(config_.scan_rate > 0.0);

  state_.assign(config_.vulnerable_hosts, HostState::Susceptible);
  generation_.assign(config_.vulnerable_hosts, 0);
  infected_at_.assign(config_.vulnerable_hosts, 0.0);

  if (config_.benign.enabled()) {
    WORMS_EXPECTS(config_.benign.connection_rate > 0.0);
    WORMS_EXPECTS(config_.benign.new_destination_probability >= 0.0 &&
                  config_.benign.new_destination_probability <= 1.0);
    WORMS_EXPECTS(config_.benign.working_set_size >= 1);
    benign_offline_.assign(config_.benign.host_count, false);
    benign_working_set_.resize(config_.benign.host_count);
  }
}

void ScanLevelSimulation::add_observer(OutbreakObserver* observer) {
  WORMS_EXPECTS(observer != nullptr);
  observers_.push_back(observer);
}

void ScanLevelSimulation::schedule_next_scan(net::HostId id, sim::SimTime now) {
  const double gap = stats::sample_exponential(rng_, config_.scan_rate);
  engine_.schedule_at(advance_active_time(config_.stealth, infected_at_[id], now, gap),
                      Event{Event::Kind::Scan, id, 0});
}

void ScanLevelSimulation::infect(net::HostId id, net::HostId parent, std::uint32_t generation,
                                 sim::SimTime now) {
  WORMS_EXPECTS(state_[id] == HostState::Susceptible);
  state_[id] = HostState::Infected;
  generation_[id] = generation;
  infected_at_[id] = now;
  ++active_infected_;
  ++result_.total_infected;
  if (active_infected_ > result_.peak_active) result_.peak_active = active_infected_;
  if (generation >= result_.generation_sizes.size()) {
    result_.generation_sizes.resize(generation + 1, 0);
  }
  ++result_.generation_sizes[generation];
  for (auto* obs : observers_) obs->on_infection(now, id, parent, generation);

  if (config_.stop_at_total_infected != 0 &&
      result_.total_infected >= config_.stop_at_total_infected) {
    result_.hit_infection_cap = true;
    engine_.stop();
    return;
  }
  schedule_next_scan(id, now);
}

void ScanLevelSimulation::remove(net::HostId id, sim::SimTime now) {
  WORMS_EXPECTS(state_[id] == HostState::Infected);
  state_[id] = HostState::Removed;
  WORMS_ENSURES(active_infected_ > 0);
  --active_infected_;
  ++result_.total_removed;
  for (auto* obs : observers_) obs->on_removal(now, id);
}

void ScanLevelSimulation::deliver_scan(net::HostId source, net::Ipv4Address target,
                                       sim::SimTime now) {
  ++result_.total_scans;
  if (config_.congestion_eta > 0.0) {
    // Two-factor congestion: the packet leaves the host (its counter saw it)
    // but saturated links drop it before it reaches the target.
    const double frac_infected = static_cast<double>(result_.total_infected) /
                                 static_cast<double>(config_.vulnerable_hosts);
    const double delivery = std::pow(1.0 - frac_infected, config_.congestion_eta);
    if (!rng_.bernoulli(delivery)) return;
  }
  const net::HostId victim = registry_.lookup(target);
  if (victim == net::kNoHost) return;
  if (state_[victim] == HostState::Susceptible) {
    infect(victim, source, generation_[source] + 1, now);
  } else {
    // Warhol-worm rule, delegated: a permutation scanner that hits an
    // already-infected host jumps elsewhere; other strategies ignore it.
    scan_target_->on_duplicate_hit(source, rng_);
  }
}

void ScanLevelSimulation::handle(sim::SimTime now, const Event& ev) {
  switch (ev.kind) {
    case Event::Kind::Scan: {
      if (state_[ev.host] != HostState::Infected) return;
      const net::Ipv4Address target = scan_target_->pick(ev.host, rng_);
      const core::ScanDecision decision = policy_->on_scan(ev.host, now, target);
      switch (decision.action) {
        case core::ScanAction::Allow:
          deliver_scan(ev.host, target, now);
          break;
        case core::ScanAction::Drop:
          break;
        case core::ScanAction::Delay:
          engine_.schedule_in(decision.delay,
                              Event{Event::Kind::DelayedScan, ev.host, target.value()});
          break;
        case core::ScanAction::Remove:
          remove(ev.host, now);
          return;  // no further scans from this host
        case core::ScanAction::AllowAndRemove:
          deliver_scan(ev.host, target, now);
          // deliver_scan may have stopped the run at the infection cap, in
          // which case this host's removal is moot bookkeeping — still apply
          // it so counters stay consistent.
          if (state_[ev.host] == HostState::Infected) remove(ev.host, now);
          return;
      }
      if (state_[ev.host] == HostState::Infected) schedule_next_scan(ev.host, now);
      break;
    }
    case Event::Kind::DelayedScan: {
      // Queued packets die with the queue when the host was pulled offline.
      if (state_[ev.host] != HostState::Infected) return;
      deliver_scan(ev.host, net::Ipv4Address(ev.target), now);
      break;
    }
    case Event::Kind::BenignConn:
      handle_benign_connection(ev.host, now);
      break;
    case Event::Kind::BenignRestore: {
      benign_offline_[ev.host] = false;
      ++result_.benign_restored;
      policy_->on_host_restored(benign_policy_id(ev.host), now);
      schedule_benign_connection(ev.host, now);
      break;
    }
    case Event::Kind::CycleSweep: {
      // End-of-cycle heavy-duty checking: every infected host is found and
      // cleaned, whatever its counter says.
      for (net::HostId h = 0; h < state_.size(); ++h) {
        if (state_[h] == HostState::Infected) remove(h, now);
      }
      // Next sweep only if there could be anything left to catch (benign
      // traffic keeps the queue alive anyway; otherwise the queue drains).
      if (config_.benign.enabled() || active_infected_ > 0 || !engine_.empty()) {
        engine_.schedule_in(config_.cycle_sweep_interval, Event{Event::Kind::CycleSweep, 0, 0});
      }
      break;
    }
  }
}

void ScanLevelSimulation::schedule_benign_connection(std::uint32_t index, sim::SimTime now) {
  const double gap = stats::sample_exponential(rng_, config_.benign.connection_rate);
  engine_.schedule_at(now + gap, Event{Event::Kind::BenignConn, index, 0});
}

void ScanLevelSimulation::handle_benign_connection(std::uint32_t index, sim::SimTime now) {
  if (benign_offline_[index]) return;

  // Destination: usually a revisit from the working set, sometimes new.
  auto& working_set = benign_working_set_[index];
  std::uint32_t dest;
  if (working_set.empty() || rng_.bernoulli(config_.benign.new_destination_probability)) {
    dest = registry_.space().sample(rng_).value();
    working_set.push_back(dest);
    if (working_set.size() > config_.benign.working_set_size) {
      working_set.erase(working_set.begin());
    }
  } else {
    dest = working_set[static_cast<std::size_t>(rng_.below(working_set.size()))];
  }

  const core::ScanDecision decision =
      policy_->on_scan(benign_policy_id(index), now, net::Ipv4Address(dest));
  switch (decision.action) {
    case core::ScanAction::Allow:
    case core::ScanAction::Delay:  // delayed, but it does go out
      ++result_.benign_connections;
      break;
    case core::ScanAction::Drop:
      break;
    case core::ScanAction::AllowAndRemove:
      ++result_.benign_connections;
      [[fallthrough]];
    case core::ScanAction::Remove: {
      // False positive: a clean host pulled offline for checking.
      benign_offline_[index] = true;
      ++result_.benign_false_removals;
      if (config_.check_duration > 0.0) {
        engine_.schedule_in(config_.check_duration, Event{Event::Kind::BenignRestore, index, 0});
      }
      return;  // no further traffic until restored
    }
  }
  schedule_benign_connection(index, now);
}

OutbreakResult ScanLevelSimulation::run(sim::SimTime horizon) {
  WORMS_EXPECTS(!ran_);
  ran_ = true;

  // Benign background traffic first, so the policy sees it from t = 0.
  for (std::uint32_t i = 0; i < config_.benign.host_count; ++i) {
    schedule_benign_connection(i, 0.0);
  }
  if (config_.cycle_sweep_interval > 0.0) {
    engine_.schedule_at(config_.cycle_sweep_interval, Event{Event::Kind::CycleSweep, 0, 0});
  }

  if (topology_ != nullptr) {
    // Graph mode: which nodes seed the outbreak matters (degree, locality),
    // so the seeding rule is explicit.
    for (const net::NodeId v :
         select_seed_hosts(*topology_, graph_options_.seeding, config_.initial_infected)) {
      if (result_.hit_infection_cap) break;
      infect(v, kNoParent, 0, 0.0);
    }
  } else {
    // Seed the outbreak: the first I0 host ids form generation 0 (their
    // addresses are random, so which ids is immaterial).
    for (std::uint32_t i = 0; i < config_.initial_infected; ++i) {
      infect(i, kNoParent, 0, 0.0);
    }
  }

  engine_.run([this](sim::SimTime now, const Event& ev) { handle(now, ev); }, horizon);

  result_.end_time = engine_.now();
  result_.contained = (active_infected_ == 0) && !result_.hit_infection_cap;
  for (auto* obs : observers_) obs->on_finished(result_.end_time);
  return result_;
}

}  // namespace worms::worm
