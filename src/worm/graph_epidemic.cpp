#include "worm/graph_epidemic.hpp"

#include <vector>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace worms::worm {

OutbreakResult run_graph_outbreak(const net::GraphTopology& topology,
                                  const GraphOutbreakConfig& config, std::uint64_t seed) {
  WORMS_EXPECTS(config.transmit_probability >= 0.0 && config.transmit_probability <= 1.0);
  const std::uint32_t n = topology.node_count();
  WORMS_EXPECTS(config.initial_infected >= 1 && config.initial_infected <= n);

  support::Rng rng(seed);
  enum : std::uint8_t { kSusceptible = 0, kInfected = 1 };
  std::vector<std::uint8_t> state(n, kSusceptible);

  OutbreakResult result;
  std::vector<net::NodeId> frontier =
      select_seed_hosts(topology, config.seeding, config.initial_infected);
  for (const net::NodeId v : frontier) state[v] = kInfected;
  result.total_infected = frontier.size();
  result.generation_sizes.push_back(frontier.size());
  result.peak_active = frontier.size();

  std::vector<net::NodeId> next;
  const bool capped = config.stop_at_total_infected != 0;
  while (!frontier.empty() && !result.hit_infection_cap) {
    next.clear();
    for (const net::NodeId v : frontier) {
      for (const net::NodeId u : topology.neighbors(v)) {
        ++result.total_scans;
        if (state[u] == kSusceptible && rng.bernoulli(config.transmit_probability)) {
          state[u] = kInfected;
          next.push_back(u);
          ++result.total_infected;
          if (capped && result.total_infected >= config.stop_at_total_infected) {
            result.hit_infection_cap = true;
            break;
          }
        }
      }
      if (result.hit_infection_cap) break;
    }
    if (result.hit_infection_cap) break;  // in-flight wave stays active (not removed)
    // This wave's hosts are checked and removed; the next wave takes over.
    result.total_removed += frontier.size();
    if (!next.empty()) {
      result.generation_sizes.push_back(next.size());
      result.peak_active = std::max<std::uint64_t>(result.peak_active, next.size());
    }
    frontier.swap(next);
    result.end_time += 1.0;
  }
  result.contained = !result.hit_infection_cap;
  return result;
}

}  // namespace worms::worm
