// Generation-level epidemic on a graph topology: the network analogue of the
// paper's branching process, at the same abstraction level as the hit-level
// simulator (non-events elided, O(touched edges) per run).
//
// Model: a discrete SIR cascade.  Every infected node transmits along each
// incident edge independently with probability φ (`transmit_probability`),
// then is removed — the per-edge transmission picture of Draief/Ganesh/
// Massoulié, whose extinction condition is spectral: the outbreak dies out
// when φ·ρ(A) ≤ 1.  On K_V this is exactly Proposition 1: a budget-M
// uniform scanner transmits to any given host with probability φ = M/2^bits,
// and φ·ρ(A) = M·(V−1)/2^bits ≈ M·p, so the knee sits at M = 1/p.  The
// figT1/figT2 programs sweep φ across topologies against the power-iteration
// ρ(A) estimate.
//
// Determinism: one Rng seeded per run, frontier processed in infection
// order, neighbors ascending — a (topology, config, seed) triple fully
// determines the result, so the parallel Monte Carlo engine reproduces
// bit-identical sweeps for any thread count.
#pragma once

#include <cstdint>

#include "net/graph/topology.hpp"
#include "worm/result.hpp"
#include "worm/scan_target.hpp"

namespace worms::worm {

struct GraphOutbreakConfig {
  double transmit_probability = 0.0;  ///< φ: per incident edge, in [0, 1]
  std::uint32_t initial_infected = 1;
  GraphSeeding seeding = GraphSeeding::FirstIds;
  /// Stop once this many hosts are infected (0 = run to extinction; finite
  /// graphs always terminate, so the cap only marks "escaped containment").
  std::uint64_t stop_at_total_infected = 0;
};

/// Runs one cascade.  In the result, a "generation" is one frontier wave and
/// `end_time` counts waves; `total_scans` counts transmission attempts
/// (edges tried); `contained` means the cascade died before the cap.
[[nodiscard]] OutbreakResult run_graph_outbreak(const net::GraphTopology& topology,
                                                const GraphOutbreakConfig& config,
                                                std::uint64_t seed);

}  // namespace worms::worm
