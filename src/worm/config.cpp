#include "worm/config.hpp"

#include <cmath>

namespace worms::worm {

sim::SimTime advance_active_time(const StealthSchedule& schedule, sim::SimTime infection_time,
                                 sim::SimTime now, double active_dt) {
  if (!schedule.enabled()) return now + active_dt;
  const sim::SimTime anchor =
      schedule.global_anchor ? schedule.anchor_offset : infection_time;
  const double period = schedule.period();
  // rel may be negative under a global anchor; floor() keeps pos in
  // [0, period) either way.
  const double rel = now - anchor;
  double k = std::floor(rel / period);
  double pos = rel - k * period;
  while (true) {
    if (pos < schedule.on_time) {  // inside an on-window: consume what's left
      const double available = schedule.on_time - pos;
      if (active_dt < available) return anchor + k * period + pos + active_dt;
      active_dt -= available;
    }
    // off-window (or window exhausted): jump to the next window start
    k += 1.0;
    pos = 0.0;
  }
}

WormConfig WormConfig::code_red() {
  WormConfig c;
  c.label = "code-red";
  c.vulnerable_hosts = 360'000;
  c.address_bits = 32;
  c.initial_infected = 10;
  c.scan_rate = 6.0;
  return c;
}

WormConfig WormConfig::slammer() {
  WormConfig c;
  c.label = "slammer";
  c.vulnerable_hosts = 120'000;
  c.address_bits = 32;
  c.initial_infected = 10;
  c.scan_rate = 4000.0;
  return c;
}

WormConfig WormConfig::slow_scanner() {
  WormConfig c = code_red();
  c.label = "slow-scanner";
  c.scan_rate = 0.5;
  return c;
}

WormConfig WormConfig::stealth_worm() {
  WormConfig c = code_red();
  c.label = "stealth";
  c.stealth.on_time = 10.0 * sim::kMinute;
  c.stealth.off_time = 50.0 * sim::kMinute;
  return c;
}

}  // namespace worms::worm
