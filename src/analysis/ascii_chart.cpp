#include "analysis/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>

#include "support/check.hpp"

namespace worms::analysis {
namespace {

std::string short_number(double v) {
  std::ostringstream os;
  if (v == 0.0) {
    os << "0";
  } else if (std::fabs(v) >= 10'000.0 || std::fabs(v) < 0.01) {
    os << std::scientific << std::setprecision(1) << v;
  } else {
    os << std::fixed << std::setprecision(std::fabs(v) < 10.0 ? 2 : 0) << v;
  }
  return os.str();
}

}  // namespace

AsciiChart::AsciiChart(std::size_t width, std::size_t height)
    : width_(width), height_(height) {
  WORMS_EXPECTS(width >= 8 && height >= 3);
}

void AsciiChart::add_series(char marker, std::vector<std::pair<double, double>> points) {
  WORMS_EXPECTS(marker > ' ');
  series_.emplace_back(marker, std::move(points));
}

void AsciiChart::set_labels(std::string x_label, std::string y_label) {
  x_label_ = std::move(x_label);
  y_label_ = std::move(y_label);
}

void AsciiChart::render(std::ostream& out) const {
  double x_min = std::numeric_limits<double>::infinity();
  double x_max = -x_min;
  double y_min = x_min;
  double y_max = -x_min;
  bool any = false;
  for (const auto& [marker, pts] : series_) {
    for (const auto& [x, y] : pts) {
      any = true;
      x_min = std::min(x_min, x);
      x_max = std::max(x_max, x);
      y_min = std::min(y_min, y);
      y_max = std::max(y_max, y);
    }
  }
  if (!any) {
    out << "(empty chart)\n";
    return;
  }
  if (x_max == x_min) x_max = x_min + 1.0;
  if (y_max == y_min) y_max = y_min + 1.0;

  std::vector<std::string> grid(height_, std::string(width_, ' '));
  for (const auto& [marker, pts] : series_) {
    for (const auto& [x, y] : pts) {
      const auto col = static_cast<std::size_t>(std::lround(
          (x - x_min) / (x_max - x_min) * static_cast<double>(width_ - 1)));
      const auto row = static_cast<std::size_t>(std::lround(
          (y - y_min) / (y_max - y_min) * static_cast<double>(height_ - 1)));
      grid[height_ - 1 - row][col] = marker;  // row 0 is the top line
    }
  }

  const std::string top = short_number(y_max);
  const std::string bottom = short_number(y_min);
  const std::size_t label_width = std::max(top.size(), bottom.size());
  for (std::size_t r = 0; r < height_; ++r) {
    std::string label(label_width, ' ');
    if (r == 0) label = std::string(label_width - top.size(), ' ') + top;
    if (r == height_ - 1) label = std::string(label_width - bottom.size(), ' ') + bottom;
    out << label << " |" << grid[r] << "\n";
  }
  out << std::string(label_width, ' ') << " +" << std::string(width_, '-') << "\n";
  const std::string lo = short_number(x_min);
  const std::string hi = short_number(x_max);
  out << std::string(label_width + 2, ' ') << lo;
  const std::size_t pad = width_ > lo.size() + hi.size()
                              ? width_ - lo.size() - hi.size()
                              : 1;
  out << std::string(pad, ' ') << hi << "\n";
  if (!x_label_.empty() || !y_label_.empty()) {
    out << std::string(label_width + 2, ' ') << "x: " << x_label_ << "   y: " << y_label_
        << "\n";
  }
}

void AsciiChart::render() const { render(std::cout); }

}  // namespace worms::analysis
