// Terminal line charts for the figure benches: the paper's figures rendered
// as text, so `bench/fig*` output is visually comparable to the originals
// without any plotting dependency.
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace worms::analysis {

class AsciiChart {
 public:
  /// Plot area of `width` x `height` characters (axes and labels extra).
  AsciiChart(std::size_t width, std::size_t height);

  /// Adds a series drawn with `marker`.  Later series overdraw earlier ones
  /// where they collide.  Points need not be sorted.
  void add_series(char marker, std::vector<std::pair<double, double>> points);

  /// Optional axis titles shown in the footer.
  void set_labels(std::string x_label, std::string y_label);

  /// Renders the grid with y-range labels on the left and the x-range plus
  /// axis titles underneath.
  void render(std::ostream& out) const;

  /// Convenience: render to std::cout.
  void render() const;

 private:
  std::size_t width_;
  std::size_t height_;
  std::string x_label_;
  std::string y_label_;
  std::vector<std::pair<char, std::vector<std::pair<double, double>>>> series_;
};

}  // namespace worms::analysis
