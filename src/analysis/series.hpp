// Small helpers for printing figure data as (x, y) series.
#pragma once

#include <cstddef>
#include <vector>

namespace worms::analysis {

/// Picks at most `max_points` indices evenly across [0, n), always including
/// the first and last.  Figure benches use this so a 10^5-point sample path
/// prints as a readable ~40-row series.
[[nodiscard]] std::vector<std::size_t> downsample_indices(std::size_t n, std::size_t max_points);

}  // namespace worms::analysis
