// Monte Carlo harness: runs a per-seed experiment `runs` times and aggregates
// the integer outcome (here: total infections I) into a frequency table and
// summary.  Run k always uses stream seed derive_seed(base_seed, k), so a
// sweep is reproducible and insensitive to execution order.
//
// Parallel execution (DESIGN.md §5 "Determinism"): the run indices are
// sharded into fixed-size chunks whose boundaries depend only on `runs` —
// never on the thread count — and every chunk owns its own
// FrequencyTable/Summary accumulator.  Workers steal whole chunks; after the
// pool drains, chunk accumulators are merged in ascending chunk order
// (FrequencyTable::merge is exact integer addition, Summary::merge is Chan's
// pairwise combination).  Because both the per-run seeds and the merge order
// are fixed, the outcome is bit-identical for any thread count, including
// the single-threaded path.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "stats/empirical.hpp"
#include "stats/summary.hpp"
#include "support/rng.hpp"
#include "support/stopwatch.hpp"
#include "support/thread_pool.hpp"

namespace worms::analysis {

struct MonteCarloOutcome {
  stats::FrequencyTable totals;  ///< distribution of the integer outcome
  stats::Summary summary;        ///< mean / variance / extrema
  std::uint64_t runs = 0;

  /// Empirical P{X <= k} (the measured counterpart of Borel–Tanner's cdf).
  [[nodiscard]] double empirical_cdf(std::uint64_t k) const {
    return totals.cumulative_frequency(k);
  }
};

/// Options for run_monte_carlo.  `threads == 1` executes everything on the
/// calling thread (no pool is created); `threads == 0` means "auto": one
/// worker per hardware thread.  Any thread count yields bit-identical
/// outcomes, so `threads` is purely a wall-clock knob.
struct MonteCarloOptions {
  std::uint64_t runs = 0;
  std::uint64_t base_seed = 0;
  unsigned threads = 1;
  /// Optional observability sink (DESIGN.md §8): per-chunk runtimes
  /// (`mc_chunk_seconds`), run/chunk counters, and worker-pool metrics.
  /// Instrumentation never affects outcomes — only the wall clock, slightly.
  obs::Registry* metrics = nullptr;
  /// Optional flight recorder (DESIGN.md §9): an "mc_chunk" span per stolen
  /// chunk on the executing thread's ring, plus pool_task/pool_wait events
  /// from the worker pool.  Like `metrics`, never affects outcomes.
  obs::Tracer* tracer = nullptr;
};

namespace detail {

/// Shard width in runs.  A deterministic function of nothing — chunk
/// boundaries must depend only on `runs` so the merge order (and hence the
/// floating-point result) is invariant under the thread count.
inline constexpr std::uint64_t kMonteCarloChunk = 32;

struct MonteCarloShard {
  stats::FrequencyTable totals;
  stats::Summary summary;
};

}  // namespace detail

/// `experiment(seed, run_index)` returns the run's integer outcome.  With
/// `options.threads != 1` the experiment is invoked concurrently from
/// multiple threads, so it must not mutate shared state; if it throws, the
/// first exception is rethrown after the pool drains.
template <typename Experiment>
[[nodiscard]] MonteCarloOutcome run_monte_carlo(const MonteCarloOptions& options,
                                                Experiment&& experiment) {
  MonteCarloOutcome out;
  out.runs = options.runs;
  if (options.runs == 0) return out;

  const std::uint64_t chunks =
      (options.runs + detail::kMonteCarloChunk - 1) / detail::kMonteCarloChunk;
  std::vector<detail::MonteCarloShard> shards(chunks);

  obs::Counter* runs_total = nullptr;
  obs::Counter* chunks_total = nullptr;
  obs::Histogram* chunk_seconds = nullptr;
  if (options.metrics != nullptr) {
    runs_total = &options.metrics->counter("mc_runs_total");
    chunks_total = &options.metrics->counter("mc_chunks_stolen_total");
    chunk_seconds = &options.metrics->histogram("mc_chunk_seconds");
  }

  auto run_chunk = [&](std::uint64_t c) {
    const std::uint64_t lo = c * detail::kMonteCarloChunk;
    const std::uint64_t hi = std::min(options.runs, lo + detail::kMonteCarloChunk);
    detail::MonteCarloShard& shard = shards[c];
    WORMS_TRACE_SPAN(options.tracer, "mc_chunk");
    const support::Stopwatch watch;
    for (std::uint64_t k = lo; k < hi; ++k) {
      const std::uint64_t value = experiment(support::derive_seed(options.base_seed, k), k);
      shard.totals.add(value);
      shard.summary.add(static_cast<double>(value));
    }
    if (chunk_seconds != nullptr) {
      chunk_seconds->record(watch.elapsed_seconds(), c);
      chunks_total->add(1, c);
      runs_total->add(hi - lo, c);
    }
  };

  const std::uint64_t requested =
      options.threads == 0 ? support::ThreadPool::hardware_threads() : options.threads;
  const unsigned threads = static_cast<unsigned>(std::min<std::uint64_t>(requested, chunks));
  if (threads <= 1) {
    for (std::uint64_t c = 0; c < chunks; ++c) run_chunk(c);
  } else {
    std::atomic<std::uint64_t> next{0};
    support::ThreadPool pool(threads);
    if (options.metrics != nullptr) pool.instrument(*options.metrics, "mc_pool");
    // Base 256: clear of the pipeline's 0..S+P range and below the auto-tid
    // space local_ring() allocates from (kTraceAutoTidBase).
    if (options.tracer != nullptr) pool.instrument_trace(*options.tracer, 256);
    for (unsigned t = 0; t < threads; ++t) {
      pool.submit([&] {
        for (std::uint64_t c = next.fetch_add(1, std::memory_order_relaxed); c < chunks;
             c = next.fetch_add(1, std::memory_order_relaxed)) {
          run_chunk(c);
        }
      });
    }
    pool.wait_idle();
  }

  for (const auto& shard : shards) {
    out.totals.merge(shard.totals);
    out.summary.merge(shard.summary);
  }
  return out;
}

}  // namespace worms::analysis
