// Monte Carlo harness: runs a per-seed experiment `runs` times and aggregates
// the integer outcome (here: total infections I) into a frequency table and
// summary.  Run k always uses stream seed derive_seed(base_seed, k), so a
// sweep is reproducible and insensitive to execution order.
#pragma once

#include <cstdint>

#include "stats/empirical.hpp"
#include "stats/summary.hpp"
#include "support/rng.hpp"

namespace worms::analysis {

struct MonteCarloOutcome {
  stats::FrequencyTable totals;  ///< distribution of the integer outcome
  stats::Summary summary;        ///< mean / variance / extrema
  std::uint64_t runs = 0;

  /// Empirical P{X <= k} (the measured counterpart of Borel–Tanner's cdf).
  [[nodiscard]] double empirical_cdf(std::uint64_t k) const {
    return totals.cumulative_frequency(k);
  }
};

/// `experiment(seed, run_index)` returns the run's integer outcome.
template <typename Experiment>
[[nodiscard]] MonteCarloOutcome run_monte_carlo(std::uint64_t runs, std::uint64_t base_seed,
                                                Experiment&& experiment) {
  MonteCarloOutcome out;
  out.runs = runs;
  for (std::uint64_t k = 0; k < runs; ++k) {
    const std::uint64_t value = experiment(support::derive_seed(base_seed, k), k);
    out.totals.add(value);
    out.summary.add(static_cast<double>(value));
  }
  return out;
}

}  // namespace worms::analysis
