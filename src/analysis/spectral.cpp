#include "analysis/spectral.hpp"

#include <cmath>
#include <vector>

#include "support/check.hpp"

namespace worms::analysis {

SpectralEstimate estimate_spectral_radius(const net::GraphTopology& graph,
                                          const SpectralOptions& options) {
  WORMS_EXPECTS(options.max_iterations >= 1);
  WORMS_EXPECTS(options.tolerance > 0.0);

  SpectralEstimate out;
  const std::uint32_t n = graph.node_count();
  if (n == 0 || graph.edge_count() == 0) {
    out.converged = true;
    return out;
  }

  std::vector<double> x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> y(n);
  double shifted = 0.0;  // ρ(A + I) estimate
  for (std::uint32_t it = 1; it <= options.max_iterations; ++it) {
    // y = (A + I) x, then the norm-ratio Rayleigh estimate.
    double norm_sq = 0.0;
    for (std::uint32_t v = 0; v < n; ++v) {
      double sum = x[v];
      for (const net::NodeId u : graph.neighbors(v)) sum += x[u];
      y[v] = sum;
      norm_sq += sum * sum;
    }
    const double norm = std::sqrt(norm_sq);
    WORMS_ENSURES(norm > 0.0);
    const double previous = shifted;
    shifted = norm;  // ‖(A+I)x‖ / ‖x‖ with ‖x‖ = 1
    const double inv = 1.0 / norm;
    for (std::uint32_t v = 0; v < n; ++v) x[v] = y[v] * inv;
    out.iterations = it;
    if (it > 1 && std::abs(shifted - previous) <= options.tolerance * std::max(1.0, shifted)) {
      out.converged = true;
      break;
    }
  }
  out.value = shifted - 1.0;
  return out;
}

}  // namespace worms::analysis
