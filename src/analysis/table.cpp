#include "analysis/table.hpp"

#include <algorithm>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "support/check.hpp"

namespace worms::analysis {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  WORMS_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  WORMS_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed << value;
  return os.str();
}

std::string Table::fmt(std::uint64_t value) { return std::to_string(value); }

std::string Table::fmt_percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << std::fixed << fraction * 100.0 << '%';
  return os.str();
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::setw(static_cast<int>(widths[c])) << row[c];
      out << (c + 1 < row.size() ? "  " : "\n");
    }
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c], '-') << (c + 1 < headers_.size() ? "  " : "\n");
  }
  for (const auto& row : rows_) print_row(row);
}

void Table::print() const { print(std::cout); }

void Table::print_csv(std::ostream& out) const {
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << row[c] << (c + 1 < row.size() ? "," : "\n");
    }
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace worms::analysis
