#include "analysis/series.hpp"

#include "support/check.hpp"

namespace worms::analysis {

std::vector<std::size_t> downsample_indices(std::size_t n, std::size_t max_points) {
  WORMS_EXPECTS(max_points >= 2);
  std::vector<std::size_t> idx;
  if (n == 0) return idx;
  if (n <= max_points) {
    idx.reserve(n);
    for (std::size_t i = 0; i < n; ++i) idx.push_back(i);
    return idx;
  }
  idx.reserve(max_points);
  for (std::size_t i = 0; i < max_points; ++i) {
    idx.push_back(i * (n - 1) / (max_points - 1));
  }
  return idx;
}

}  // namespace worms::analysis
