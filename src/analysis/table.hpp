// Aligned-column table printing for the bench harness output ("the same rows
// the paper reports").  Cells are formatted up front; the printer only
// handles layout.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace worms::analysis {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  [[nodiscard]] static std::string fmt(double value, int precision = 4);
  [[nodiscard]] static std::string fmt(std::uint64_t value);
  [[nodiscard]] static std::string fmt_percent(double fraction, int precision = 2);

  /// Monospace-aligned rendering with a header underline.
  void print(std::ostream& out) const;

  /// Convenience: print to std::cout.
  void print() const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& out) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace worms::analysis
