// Spectral-radius estimation for graph topologies.
//
// The network epidemic threshold (Draief/Ganesh/Massoulié) is spectral: an
// SIR outbreak with per-edge transmission probability φ dies out fast when
// φ·ρ(A) < 1, where ρ(A) is the adjacency spectral radius.  On K_V this
// degenerates to the paper's Proposition 1 (ρ = V − 1, φ = M/2^bits ⇒
// M ≤ 1/p).  The dense power iteration in worms::math handles the K ≤ 16
// multitype matrices; this estimator is its CSR counterpart for million-node
// adjacency structures — O(edges) per iteration, no matrix materialization.
#pragma once

#include <cstdint>

#include "net/graph/topology.hpp"

namespace worms::analysis {

struct SpectralOptions {
  std::uint32_t max_iterations = 1'000;
  /// Convergence test: |ρ_k − ρ_{k−1}| ≤ tolerance · max(1, ρ_k).
  double tolerance = 1e-9;
};

struct SpectralEstimate {
  double value = 0.0;           ///< ρ(A) estimate (exact 0 for edgeless graphs)
  std::uint32_t iterations = 0; ///< iterations actually run
  bool converged = false;       ///< tolerance met before max_iterations
};

/// Power iteration on A + I (the +I shift keeps bipartite graphs — even
/// cycles, trees — from oscillating between ±ρ), started from the normalized
/// all-ones vector, which always overlaps the Perron vector.  Deterministic:
/// no randomness, so equal topologies give bit-identical estimates.  For a
/// disconnected graph this converges to the largest component's ρ.
[[nodiscard]] SpectralEstimate estimate_spectral_radius(const net::GraphTopology& graph,
                                                        const SpectralOptions& options = {});

}  // namespace worms::analysis
