// Deterministic epidemic models used as baselines (paper §II, Related Work).
//
// These are the models the paper argues are inadequate for the *early phase*:
// they track means and miss extinction/variability.  We implement them to
// reproduce that comparison (bench/ablation_deterministic_vs_stochastic):
//   * RcsModel       — random constant spread (Staniford et al.),
//                      dI/dt = β I (V − I), with closed-form logistic solution;
//   * TwoFactorModel — Zou et al.'s two-factor worm model with dynamic
//                      infection rate and human countermeasures (Eq. (1) of
//                      the paper);
//   * SirModel / SisModel — classical compartment models.
#pragma once

#include <vector>

#include "math/ode.hpp"

namespace worms::epidemic {

/// Random constant spread: dI/dt = β I (V − I).
class RcsModel {
 public:
  /// `beta` is the pairwise infection rate (per host-pair per second);
  /// a worm scanning `r` addresses/s over a 2^32 space has β = r / 2^32.
  RcsModel(double beta, double total_hosts);

  /// Exact logistic solution I(t) given I(0) = i0.
  [[nodiscard]] double closed_form(double t, double i0) const;

  /// Integrates numerically, sampling at `times`; state vector is {I}.
  [[nodiscard]] math::OdeSolution integrate(double i0, const std::vector<double>& times) const;

  [[nodiscard]] double beta() const noexcept { return beta_; }
  [[nodiscard]] double total_hosts() const noexcept { return v_; }

 private:
  double beta_;
  double v_;
};

/// Two-factor model (Zou, Gong, Towsley 2002), as quoted in the paper:
///   dI/dt = β(t) · [V − R − I − Q] · I − dR/dt
///   dR/dt = γ I                     (removal/patching of infectious hosts)
///   dQ/dt = μ [V − R − I − Q] I     (quarantine of susceptible hosts)
///   β(t)  = β0 (1 − I/V)^η          (congestion slows scanning)
/// With γ = μ = 0 and η = 0 this reduces exactly to the RCS model — the
/// reduction is a unit test.
class TwoFactorModel {
 public:
  struct Params {
    double beta0 = 0.0;       ///< baseline pairwise infection rate
    double eta = 0.0;         ///< congestion exponent
    double gamma = 0.0;       ///< removal rate of infectious hosts
    double mu = 0.0;          ///< quarantine rate of susceptible hosts
    double total_hosts = 0.0; ///< V
  };

  explicit TwoFactorModel(const Params& params);

  /// State vector {I, R, Q}; susceptibles are V − I − R − Q.
  [[nodiscard]] math::OdeSolution integrate(double i0, const std::vector<double>& times) const;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

/// Kermack–McKendrick SIR: dS = −βSI, dI = βSI − γI, dR = γI.
class SirModel {
 public:
  SirModel(double beta, double gamma, double total_hosts);

  /// State vector {S, I, R}.
  [[nodiscard]] math::OdeSolution integrate(double i0, const std::vector<double>& times) const;

  /// Basic reproduction number R0 = β V / γ.
  [[nodiscard]] double r0() const noexcept;

  /// Final-size relation: the fraction z of the population ever infected
  /// solves z = 1 − e^{−R0·z}.  Returns the nonzero root for R0 > 1 and 0
  /// otherwise (γ must be positive).  Checked against full integration in
  /// tests/epidemic_models_test.cpp.
  [[nodiscard]] double final_size_fraction() const;

 private:
  double beta_;
  double gamma_;
  double v_;
};

/// SIS: infected hosts return to susceptible (no immunity).
class SisModel {
 public:
  SisModel(double beta, double gamma, double total_hosts);

  /// State vector {S, I}.
  [[nodiscard]] math::OdeSolution integrate(double i0, const std::vector<double>& times) const;

  /// Endemic equilibrium I* = V − γ/β (0 if R0 <= 1).
  [[nodiscard]] double endemic_equilibrium() const noexcept;

 private:
  double beta_;
  double gamma_;
  double v_;
};

}  // namespace worms::epidemic
