#include "epidemic/aawp.hpp"

#include <cmath>

#include "support/check.hpp"

namespace worms::epidemic {

AawpModel::AawpModel(const Params& params) : params_(params) {
  WORMS_EXPECTS(params.vulnerable_hosts >= 1);
  WORMS_EXPECTS(params.address_bits >= 1 && params.address_bits <= 32);
  WORMS_EXPECTS(params.scans_per_tick > 0.0);
  WORMS_EXPECTS(params.death_rate >= 0.0 && params.death_rate < 1.0);
  // ln(1 − 2^{−b}) via log1p for accuracy at b = 32.
  per_scan_miss_log_ = std::log1p(-std::ldexp(1.0, -params.address_bits));
}

double AawpModel::step(double infected) const {
  const double v = static_cast<double>(params_.vulnerable_hosts);
  const double uninfected = v - infected;
  if (uninfected <= 0.0) return v * (1.0 - params_.death_rate);
  // P{a given address is hit by at least one of s·n scans}.
  const double hit_prob = -std::expm1(params_.scans_per_tick * infected * per_scan_miss_log_);
  double next = infected + uninfected * hit_prob - params_.death_rate * infected;
  if (next > v) next = v;
  if (next < 0.0) next = 0.0;
  return next;
}

std::vector<double> AawpModel::run(double initial, std::size_t ticks) const {
  WORMS_EXPECTS(initial >= 0.0 &&
                initial <= static_cast<double>(params_.vulnerable_hosts));
  std::vector<double> out;
  out.reserve(ticks + 1);
  out.push_back(initial);
  double n = initial;
  for (std::size_t t = 0; t < ticks; ++t) {
    n = step(n);
    out.push_back(n);
  }
  return out;
}

double AawpModel::early_growth_factor() const noexcept {
  const double v = static_cast<double>(params_.vulnerable_hosts);
  return 1.0 + params_.scans_per_tick * v * std::ldexp(1.0, -params_.address_bits) -
         params_.death_rate;
}

}  // namespace worms::epidemic
