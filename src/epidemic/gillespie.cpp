#include "epidemic/gillespie.hpp"

#include <cmath>

#include "stats/samplers.hpp"
#include "support/check.hpp"

namespace worms::epidemic {

GillespieSir::GillespieSir(const GillespieParams& params) : params_(params) {
  WORMS_EXPECTS(params.beta > 0.0);
  WORMS_EXPECTS(params.delta >= 0.0);
  WORMS_EXPECTS(params.total_hosts >= 1);
  WORMS_EXPECTS(params.initial_infected >= 1);
  WORMS_EXPECTS(params.initial_infected <= params.total_hosts);
}

GillespieResult GillespieSir::run(support::Rng& rng, bool record_trajectory) const {
  std::uint64_t susceptible = params_.total_hosts - params_.initial_infected;
  std::uint64_t infected = params_.initial_infected;

  GillespieResult out;
  out.total_infected = params_.initial_infected;
  out.peak_infected = infected;

  double t = 0.0;
  for (std::uint64_t events = 0; events < params_.max_events; ++events) {
    const double rate_infect =
        params_.beta * static_cast<double>(susceptible) * static_cast<double>(infected);
    const double rate_remove = params_.delta * static_cast<double>(infected);
    const double total_rate = rate_infect + rate_remove;
    if (infected == 0 || total_rate <= 0.0) break;

    t += stats::sample_exponential(rng, total_rate);
    if (rng.uniform() * total_rate < rate_infect) {
      WORMS_ENSURES(susceptible > 0);
      --susceptible;
      ++infected;
      ++out.total_infected;
    } else {
      --infected;
    }
    if (infected > out.peak_infected) out.peak_infected = infected;
    if (record_trajectory) {
      out.event_times.push_back(t);
      out.infected.push_back(infected);
    }
  }
  out.extinct = (infected == 0);
  out.end_time = t;
  return out;
}

double GillespieSir::branching_extinction_probability() const {
  if (params_.delta == 0.0) return 0.0;  // immortal lineages never die out
  const double offspring_mean =
      params_.beta * static_cast<double>(params_.total_hosts) / params_.delta;
  if (offspring_mean <= 1.0) return 1.0;
  const double per_lineage = 1.0 / offspring_mean;  // for linear birth-death chains
  return std::pow(per_lineage, static_cast<double>(params_.initial_infected));
}

}  // namespace worms::epidemic
