#include "epidemic/models.hpp"

#include <cmath>

#include "math/brent.hpp"
#include "support/check.hpp"

namespace worms::epidemic {

RcsModel::RcsModel(double beta, double total_hosts) : beta_(beta), v_(total_hosts) {
  WORMS_EXPECTS(beta > 0.0);
  WORMS_EXPECTS(total_hosts > 0.0);
}

double RcsModel::closed_form(double t, double i0) const {
  WORMS_EXPECTS(i0 > 0.0 && i0 <= v_);
  // Logistic: I(t) = V / (1 + (V/I0 − 1) e^{−βVt}).
  return v_ / (1.0 + (v_ / i0 - 1.0) * std::exp(-beta_ * v_ * t));
}

math::OdeSolution RcsModel::integrate(double i0, const std::vector<double>& times) const {
  const auto rhs = [this](double, const std::vector<double>& y, std::vector<double>& dy) {
    dy[0] = beta_ * y[0] * (v_ - y[0]);
  };
  return math::dopri45_integrate(rhs, 0.0, {i0}, times);
}

TwoFactorModel::TwoFactorModel(const Params& params) : params_(params) {
  WORMS_EXPECTS(params.beta0 > 0.0);
  WORMS_EXPECTS(params.total_hosts > 0.0);
  WORMS_EXPECTS(params.eta >= 0.0);
  WORMS_EXPECTS(params.gamma >= 0.0);
  WORMS_EXPECTS(params.mu >= 0.0);
}

math::OdeSolution TwoFactorModel::integrate(double i0, const std::vector<double>& times) const {
  const Params& prm = params_;
  const auto rhs = [prm](double, const std::vector<double>& y, std::vector<double>& dy) {
    const double infected = y[0];
    const double removed = y[1];
    const double quarantined = y[2];
    const double susceptible =
        std::max(0.0, prm.total_hosts - infected - removed - quarantined);
    const double frac = std::max(0.0, 1.0 - infected / prm.total_hosts);
    const double beta_t = prm.beta0 * std::pow(frac, prm.eta);
    const double removal_flow = prm.gamma * infected;
    dy[0] = beta_t * susceptible * infected - removal_flow;
    dy[1] = removal_flow;
    dy[2] = prm.mu * susceptible * infected;
  };
  return math::dopri45_integrate(rhs, 0.0, {i0, 0.0, 0.0}, times);
}

SirModel::SirModel(double beta, double gamma, double total_hosts)
    : beta_(beta), gamma_(gamma), v_(total_hosts) {
  WORMS_EXPECTS(beta > 0.0);
  WORMS_EXPECTS(gamma >= 0.0);
  WORMS_EXPECTS(total_hosts > 0.0);
}

math::OdeSolution SirModel::integrate(double i0, const std::vector<double>& times) const {
  const double beta = beta_;
  const double gamma = gamma_;
  const auto rhs = [beta, gamma](double, const std::vector<double>& y, std::vector<double>& dy) {
    const double flow = beta * y[0] * y[1];
    dy[0] = -flow;
    dy[1] = flow - gamma * y[1];
    dy[2] = gamma * y[1];
  };
  return math::dopri45_integrate(rhs, 0.0, {v_ - i0, i0, 0.0}, times);
}

double SirModel::r0() const noexcept { return gamma_ == 0.0 ? HUGE_VAL : beta_ * v_ / gamma_; }

double SirModel::final_size_fraction() const {
  WORMS_EXPECTS(gamma_ > 0.0);
  const double r0 = this->r0();
  if (r0 <= 1.0) return 0.0;
  // z − 1 + e^{−R0 z} has its nonzero root in (0, 1]; f(ε) < 0 for small ε
  // when R0 > 1 and f(1) = e^{−R0} > 0 bracket it.
  const auto f = [r0](double z) { return z - 1.0 + std::exp(-r0 * z); };
  return math::brent_find_root(f, 1e-9, 1.0, 1e-13).root;
}

SisModel::SisModel(double beta, double gamma, double total_hosts)
    : beta_(beta), gamma_(gamma), v_(total_hosts) {
  WORMS_EXPECTS(beta > 0.0);
  WORMS_EXPECTS(gamma >= 0.0);
  WORMS_EXPECTS(total_hosts > 0.0);
}

math::OdeSolution SisModel::integrate(double i0, const std::vector<double>& times) const {
  const double beta = beta_;
  const double gamma = gamma_;
  const auto rhs = [beta, gamma](double, const std::vector<double>& y, std::vector<double>& dy) {
    const double flow = beta * y[0] * y[1];
    dy[0] = -flow + gamma * y[1];
    dy[1] = flow - gamma * y[1];
  };
  return math::dopri45_integrate(rhs, 0.0, {v_ - i0, i0}, times);
}

double SisModel::endemic_equilibrium() const noexcept {
  const double eq = v_ - gamma_ / beta_;
  return eq > 0.0 ? eq : 0.0;
}

}  // namespace worms::epidemic
