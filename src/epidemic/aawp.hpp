// AAWP — the discrete-time "Analytical Active Worm Propagation" model
// (Chen, Gao, Kwiat, "Modeling the Spread of Active Worms", INFOCOM 2003 —
// reference [3]-family of the paper's related work).
//
// Time advances in ticks of one scan round; with n_t infected hosts, each
// scanning s addresses per tick over a 2^bits space holding V vulnerable
// (m_t of them still uninfected = V − n_t), and per-tick patching/death:
//
//   n_{t+1} = n_t + (V − n_t) · [1 − (1 − 1/2^bits)^{s·n_t}] − d·n_t
//
// Unlike the continuous RCS model it accounts for scan overlap within a tick
// (the bracketed hit probability saturates), which matters for fast worms
// like Slammer.  Deterministic like the rest of worms::epidemic — it shares
// the early-phase blindness the paper's branching model fixes.
#pragma once

#include <cstdint>
#include <vector>

namespace worms::epidemic {

class AawpModel {
 public:
  struct Params {
    std::uint64_t vulnerable_hosts = 0;  ///< V
    int address_bits = 32;
    double scans_per_tick = 1.0;         ///< s
    double death_rate = 0.0;             ///< d: removed/patched fraction per tick
  };

  explicit AawpModel(const Params& params);

  /// Iterates `ticks` steps from n_0 = initial; returns n_0..n_ticks
  /// (ticks + 1 values).
  [[nodiscard]] std::vector<double> run(double initial, std::size_t ticks) const;

  /// One step of the recurrence.
  [[nodiscard]] double step(double infected) const;

  /// Early-phase per-tick growth factor: 1 + s·V/2^bits − d (the linearized
  /// recurrence around n = 0).
  [[nodiscard]] double early_growth_factor() const noexcept;

  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  double per_scan_miss_log_;  // ln(1 − 2^{−bits})
};

}  // namespace worms::epidemic
