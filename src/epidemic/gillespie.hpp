// Exact stochastic simulation (Gillespie / SSA) of the general stochastic
// epidemic — the "general stochastic epidemic model" the paper's related work
// (Liljenstam et al.) uses for the early phase.
//
// CTMC on (S, I):
//   infection: rate β·S·I,  (S, I) → (S−1, I+1)
//   removal:   rate δ·I,    (S, I) → (S,   I−1)
// In the early phase (S ≈ V) each infected host behaves like a branching
// individual with offspring mean βV/δ, so the extinction probability tends to
// min(1, (δ/(βV)))^I0 — a cross-model validation test ties this to the
// worms::core branching results.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace worms::epidemic {

struct GillespieParams {
  double beta = 0.0;          ///< pairwise infection rate
  double delta = 0.0;         ///< per-host removal rate
  std::uint64_t total_hosts = 0;  ///< V
  std::uint64_t initial_infected = 1;
  std::uint64_t max_events = 50'000'000;  ///< hard safety cap
};

struct GillespieResult {
  bool extinct = false;            ///< I reached 0
  std::uint64_t total_infected = 0;  ///< cumulative infections incl. initial
  std::uint64_t peak_infected = 0;
  double end_time = 0.0;
  std::vector<double> event_times;     ///< optional trajectory (may be empty)
  std::vector<std::uint64_t> infected; ///< I after each recorded event
};

class GillespieSir {
 public:
  explicit GillespieSir(const GillespieParams& params);

  /// Runs one trajectory to extinction, susceptible exhaustion, or the event
  /// cap.  `record_trajectory` controls whether the time series is kept.
  [[nodiscard]] GillespieResult run(support::Rng& rng, bool record_trajectory = false) const;

  /// Branching-process prediction for the early-phase extinction probability:
  /// min(1, (δ / (β·V))^I0).
  [[nodiscard]] double branching_extinction_probability() const;

 private:
  GillespieParams params_;
};

}  // namespace worms::epidemic
