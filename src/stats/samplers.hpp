// Random-variate samplers.
//
// All samplers take the project RNG (worms::support::Rng) explicitly — no
// hidden global state.  Algorithm choices:
//   * binomial  — BINV inversion for small n·min(p,1−p), Hörmann's BTRS
//                 transformed-rejection otherwise (exact, O(1) expected);
//   * poisson   — Knuth multiplication for λ < 10, Hörmann's PTRS beyond;
//   * geometric — logarithm inversion;
//   * normal    — Marsaglia polar method.
// Accuracy of every sampler is checked against the closed-form pmf/cdf by
// chi-square and KS tests in tests/stats_samplers_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace worms::stats {

/// Binomial(n, p) variate.  Exact for all 0 <= p <= 1, n <= 2^32.
[[nodiscard]] std::uint64_t sample_binomial(support::Rng& rng, std::uint64_t n, double p);

/// Poisson(lambda) variate, lambda >= 0.
[[nodiscard]] std::uint64_t sample_poisson(support::Rng& rng, double lambda);

/// Number of Bernoulli(p) trials up to and *including* the first success
/// (support {1, 2, ...}).  This is the "scans until next hit" variable that
/// drives the hit-level worm simulator.
[[nodiscard]] std::uint64_t sample_geometric_trials(support::Rng& rng, double p);

/// Exponential(rate) variate (mean 1/rate).
[[nodiscard]] double sample_exponential(support::Rng& rng, double rate);

/// Standard normal variate.
[[nodiscard]] double sample_normal(support::Rng& rng);

/// Log-normal variate with the given log-space location/scale.
[[nodiscard]] double sample_lognormal(support::Rng& rng, double mu, double sigma);

/// Pareto(x_m, alpha) variate (support [x_m, inf)).
[[nodiscard]] double sample_pareto(support::Rng& rng, double x_min, double alpha);

/// Gamma(shape, 1) variate (unit rate), shape > 0.  Marsaglia–Tsang squeeze
/// for shape >= 1, boosted for shape < 1.
[[nodiscard]] double sample_gamma(support::Rng& rng, double shape);

/// Erlang(n, rate): the sum of n independent Exponential(rate) variates —
/// the waiting time for the n-th event of a Poisson process.  Exact direct
/// summation for small n, gamma sampling beyond.
[[nodiscard]] double sample_erlang(support::Rng& rng, std::uint64_t n, double rate);

/// Walker alias table for O(1) sampling from an arbitrary finite discrete
/// distribution.  Construction is O(n).
class AliasTable {
 public:
  /// Builds from non-negative weights (not necessarily normalized).
  /// At least one weight must be positive.
  explicit AliasTable(const std::vector<double>& weights);

  /// Draws an index in [0, size()) with probability proportional to its weight.
  [[nodiscard]] std::size_t sample(support::Rng& rng) const;

  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Normalized probability of index i (for tests).
  [[nodiscard]] double probability(std::size_t i) const { return normalized_.at(i); }

 private:
  std::vector<double> prob_;
  std::vector<std::uint32_t> alias_;
  std::vector<double> normalized_;
};

}  // namespace worms::stats
