// Closed-form probability mass functions for the discrete distributions the
// model layer reasons about.  These complement the samplers: samplers draw,
// pmf objects evaluate — and the test suite checks each pair against the
// other.
#pragma once

#include <cstdint>

namespace worms::stats {

/// Binomial(n, p) pmf/cdf/moments, evaluated in log space for stability at
/// n up to 10^7.
class BinomialPmf {
 public:
  BinomialPmf(std::uint64_t n, double p);

  [[nodiscard]] double pmf(std::uint64_t k) const;
  [[nodiscard]] double log_pmf(std::uint64_t k) const;
  /// P{X <= k} by direct stable summation from the mode outward.
  [[nodiscard]] double cdf(std::uint64_t k) const;
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] std::uint64_t trials() const noexcept { return n_; }
  [[nodiscard]] double success_probability() const noexcept { return p_; }

 private:
  std::uint64_t n_;
  double p_;
};

/// Poisson(lambda) pmf/cdf/moments.  The cdf uses the regularized upper
/// incomplete gamma, P{X <= k} = Q(k+1, lambda).
class PoissonPmf {
 public:
  explicit PoissonPmf(double lambda);

  [[nodiscard]] double pmf(std::uint64_t k) const;
  [[nodiscard]] double log_pmf(std::uint64_t k) const;
  [[nodiscard]] double cdf(std::uint64_t k) const;
  [[nodiscard]] double mean() const noexcept { return lambda_; }
  [[nodiscard]] double variance() const noexcept { return lambda_; }

 private:
  double lambda_;
};

/// Geometric distribution on {1, 2, ...}: number of Bernoulli(p) trials up to
/// and including the first success.
class GeometricTrialsPmf {
 public:
  explicit GeometricTrialsPmf(double p);

  [[nodiscard]] double pmf(std::uint64_t k) const;
  [[nodiscard]] double cdf(std::uint64_t k) const;
  [[nodiscard]] double mean() const noexcept { return 1.0 / p_; }
  [[nodiscard]] double variance() const noexcept { return (1.0 - p_) / (p_ * p_); }

 private:
  double p_;
};

}  // namespace worms::stats
