// Confidence intervals for Monte Carlo estimates.  The figure benches report
// simulated probabilities and means; these utilities put honest error bars
// on them (EXPERIMENTS.md quotes paper-vs-measured with these CIs).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "support/rng.hpp"

namespace worms::stats {

struct Interval {
  double lower = 0.0;
  double upper = 0.0;

  [[nodiscard]] bool contains(double x) const noexcept { return x >= lower && x <= upper; }
  [[nodiscard]] double width() const noexcept { return upper - lower; }
};

/// Wilson score interval for a binomial proportion — well-behaved even when
/// successes is 0 or n (unlike the Wald interval the naive ±1.96·SE gives).
[[nodiscard]] Interval wilson_interval(std::uint64_t successes, std::uint64_t trials,
                                       double confidence = 0.95);

/// Normal-theory interval for a mean (t-quantile approximated by the normal,
/// fine for the n >= 100 runs the benches use).
[[nodiscard]] Interval mean_interval(double mean, double stddev, std::uint64_t n,
                                     double confidence = 0.95);

/// Percentile bootstrap CI for an arbitrary statistic of an iid sample.
/// `statistic` maps a resampled vector to a scalar.  Deterministic in `seed`.
[[nodiscard]] Interval bootstrap_interval(
    const std::vector<double>& sample,
    const std::function<double(const std::vector<double>&)>& statistic,
    std::uint64_t resamples = 1'000, double confidence = 0.95, std::uint64_t seed = 0xB007);

}  // namespace worms::stats
