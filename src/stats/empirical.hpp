// Empirical distributions: continuous (sorted-sample ECDF/quantiles) and
// integer-valued frequency tables.  The figure benches compare these against
// the closed-form Borel–Tanner curves.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace worms::stats {

/// Empirical distribution of real-valued samples.
class EmpiricalDistribution {
 public:
  explicit EmpiricalDistribution(std::vector<double> samples);

  /// Right-continuous ECDF: fraction of samples <= x.
  [[nodiscard]] double cdf(double x) const;

  /// q-quantile with linear interpolation (type-7, the R default), q in [0,1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }
  [[nodiscard]] const std::vector<double>& sorted_samples() const noexcept { return sorted_; }

 private:
  std::vector<double> sorted_;
};

/// Frequency table over non-negative integers (e.g. total infections I).
class FrequencyTable {
 public:
  FrequencyTable() = default;

  void add(std::uint64_t value) { ++counts_[value]; ++total_; }

  /// Merges another table (parallel reduction); exact — equivalent to having
  /// added the other table's observations here, in any order.
  void merge(const FrequencyTable& other);

  [[nodiscard]] std::uint64_t count(std::uint64_t value) const;
  [[nodiscard]] double relative_frequency(std::uint64_t value) const;
  /// Fraction of observations <= value.
  [[nodiscard]] double cumulative_frequency(std::uint64_t value) const;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t min_value() const;
  [[nodiscard]] std::uint64_t max_value() const;
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;

  [[nodiscard]] const std::map<std::uint64_t, std::uint64_t>& counts() const noexcept {
    return counts_;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Fixed-width-bin histogram over [lo, hi); values outside are clamped into
/// the end bins so nothing is silently dropped.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_left(std::size_t i) const;
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] double bin_width() const noexcept { return width_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Normalized density of bin i (integrates to ~1 over the range).
  [[nodiscard]] double density(std::size_t i) const;

 private:
  double lo_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace worms::stats
