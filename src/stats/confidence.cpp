#include "stats/confidence.hpp"

#include <algorithm>
#include <cmath>

#include "math/specfun.hpp"
#include "support/check.hpp"

namespace worms::stats {

Interval wilson_interval(std::uint64_t successes, std::uint64_t trials, double confidence) {
  WORMS_EXPECTS(trials >= 1);
  WORMS_EXPECTS(successes <= trials);
  WORMS_EXPECTS(confidence > 0.0 && confidence < 1.0);
  const double z = math::normal_quantile(0.5 + confidence / 2.0);
  const double n = static_cast<double>(trials);
  const double p_hat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p_hat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(p_hat * (1.0 - p_hat) / n + z2 / (4.0 * n * n)) / denom;
  return {std::max(0.0, center - half), std::min(1.0, center + half)};
}

Interval mean_interval(double mean, double stddev, std::uint64_t n, double confidence) {
  WORMS_EXPECTS(n >= 2);
  WORMS_EXPECTS(stddev >= 0.0);
  WORMS_EXPECTS(confidence > 0.0 && confidence < 1.0);
  const double z = math::normal_quantile(0.5 + confidence / 2.0);
  const double half = z * stddev / std::sqrt(static_cast<double>(n));
  return {mean - half, mean + half};
}

Interval bootstrap_interval(const std::vector<double>& sample,
                            const std::function<double(const std::vector<double>&)>& statistic,
                            std::uint64_t resamples, double confidence, std::uint64_t seed) {
  WORMS_EXPECTS(!sample.empty());
  WORMS_EXPECTS(resamples >= 10);
  WORMS_EXPECTS(confidence > 0.0 && confidence < 1.0);

  support::Rng rng(seed);
  std::vector<double> stats_out;
  stats_out.reserve(resamples);
  std::vector<double> resample(sample.size());
  for (std::uint64_t b = 0; b < resamples; ++b) {
    for (auto& x : resample) {
      x = sample[static_cast<std::size_t>(rng.below(sample.size()))];
    }
    stats_out.push_back(statistic(resample));
  }
  std::sort(stats_out.begin(), stats_out.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto at = [&](double q) {
    const double h = q * static_cast<double>(stats_out.size() - 1);
    const auto lo = static_cast<std::size_t>(h);
    const auto hi = std::min(lo + 1, stats_out.size() - 1);
    const double frac = h - static_cast<double>(lo);
    return stats_out[lo] + frac * (stats_out[hi] - stats_out[lo]);
  };
  return {at(alpha), at(1.0 - alpha)};
}

}  // namespace worms::stats
