#include "stats/pmf.hpp"

#include <cmath>

#include "math/kahan.hpp"
#include "math/specfun.hpp"
#include "support/check.hpp"

namespace worms::stats {

BinomialPmf::BinomialPmf(std::uint64_t n, double p) : n_(n), p_(p) {
  WORMS_EXPECTS(p >= 0.0 && p <= 1.0);
}

double BinomialPmf::log_pmf(std::uint64_t k) const {
  if (k > n_) return -HUGE_VAL;
  if (p_ == 0.0) return k == 0 ? 0.0 : -HUGE_VAL;
  if (p_ == 1.0) return k == n_ ? 0.0 : -HUGE_VAL;
  const double kd = static_cast<double>(k);
  const double nd = static_cast<double>(n_);
  return math::log_choose(n_, k) + kd * std::log(p_) + (nd - kd) * std::log1p(-p_);
}

double BinomialPmf::pmf(std::uint64_t k) const { return std::exp(log_pmf(k)); }

double BinomialPmf::cdf(std::uint64_t k) const {
  if (k >= n_) return 1.0;
  // Sum the smaller tail in increasing-magnitude order for accuracy.
  const double mu = mean();
  math::KahanSum acc;
  if (static_cast<double>(k) <= mu) {
    for (std::uint64_t i = 0; i <= k; ++i) acc.add(pmf(i));
    const double v = acc.value();
    return v > 1.0 ? 1.0 : v;
  }
  for (std::uint64_t i = n_; i > k; --i) acc.add(pmf(i));
  const double v = 1.0 - acc.value();
  return v < 0.0 ? 0.0 : v;
}

double BinomialPmf::mean() const noexcept { return static_cast<double>(n_) * p_; }

double BinomialPmf::variance() const noexcept {
  return static_cast<double>(n_) * p_ * (1.0 - p_);
}

PoissonPmf::PoissonPmf(double lambda) : lambda_(lambda) { WORMS_EXPECTS(lambda >= 0.0); }

double PoissonPmf::log_pmf(std::uint64_t k) const {
  if (lambda_ == 0.0) return k == 0 ? 0.0 : -HUGE_VAL;
  const double kd = static_cast<double>(k);
  return kd * std::log(lambda_) - lambda_ - math::log_factorial(k);
}

double PoissonPmf::pmf(std::uint64_t k) const { return std::exp(log_pmf(k)); }

double PoissonPmf::cdf(std::uint64_t k) const {
  if (lambda_ == 0.0) return 1.0;
  return math::regularized_gamma_q(static_cast<double>(k) + 1.0, lambda_);
}

GeometricTrialsPmf::GeometricTrialsPmf(double p) : p_(p) { WORMS_EXPECTS(p > 0.0 && p <= 1.0); }

double GeometricTrialsPmf::pmf(std::uint64_t k) const {
  if (k == 0) return 0.0;
  if (p_ == 1.0) return k == 1 ? 1.0 : 0.0;
  const double kd = static_cast<double>(k);
  return std::exp((kd - 1.0) * std::log1p(-p_)) * p_;
}

double GeometricTrialsPmf::cdf(std::uint64_t k) const {
  if (k == 0) return 0.0;
  if (p_ == 1.0) return 1.0;
  return -std::expm1(static_cast<double>(k) * std::log1p(-p_));
}

}  // namespace worms::stats
