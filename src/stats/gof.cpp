#include "stats/gof.hpp"

#include <algorithm>
#include <cmath>

#include "math/specfun.hpp"
#include "support/check.hpp"

namespace worms::stats {

GofResult chi_square_test(const std::vector<double>& observed, const std::vector<double>& expected,
                          int extra_constraints, double min_expected) {
  WORMS_EXPECTS(observed.size() == expected.size());
  WORMS_EXPECTS(!observed.empty());

  // Pool adjacent cells until each pooled cell's expectation clears the
  // threshold.  Pooling preserves totals, so the statistic stays valid.
  std::vector<double> obs_pooled;
  std::vector<double> exp_pooled;
  double o_acc = 0.0;
  double e_acc = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    WORMS_EXPECTS(expected[i] >= 0.0);
    o_acc += observed[i];
    e_acc += expected[i];
    if (e_acc >= min_expected) {
      obs_pooled.push_back(o_acc);
      exp_pooled.push_back(e_acc);
      o_acc = 0.0;
      e_acc = 0.0;
    }
  }
  if (e_acc > 0.0 || o_acc > 0.0) {
    if (exp_pooled.empty()) {
      obs_pooled.push_back(o_acc);
      exp_pooled.push_back(e_acc);
    } else {
      obs_pooled.back() += o_acc;
      exp_pooled.back() += e_acc;
    }
  }

  double stat = 0.0;
  for (std::size_t i = 0; i < obs_pooled.size(); ++i) {
    if (exp_pooled[i] <= 0.0) continue;
    const double d = obs_pooled[i] - exp_pooled[i];
    stat += d * d / exp_pooled[i];
  }
  const double df =
      std::max(1.0, static_cast<double>(obs_pooled.size()) - 1.0 - extra_constraints);
  const double p = math::regularized_gamma_q(df / 2.0, stat / 2.0);
  return {stat, p, df};
}

namespace {

double ks_p_value(double d, double n_effective) {
  // Stephens' correction gives usable p-values down to n ≈ 10.
  const double sqrt_n = std::sqrt(n_effective);
  const double t = d * (sqrt_n + 0.12 + 0.11 / sqrt_n);
  return math::kolmogorov_q(t);
}

}  // namespace

GofResult ks_test_one_sample(std::vector<double> samples,
                             const std::function<double(double)>& cdf) {
  WORMS_EXPECTS(!samples.empty());
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  double d = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const double f = cdf(samples[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    d = std::max({d, std::fabs(f - lo), std::fabs(hi - f)});
  }
  return {d, ks_p_value(d, n), 0.0};
}

GofResult ks_test_two_sample(std::vector<double> a, std::vector<double> b) {
  WORMS_EXPECTS(!a.empty() && !b.empty());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    d = std::max(d, std::fabs(static_cast<double>(i) / na - static_cast<double>(j) / nb));
  }
  const double n_eff = na * nb / (na + nb);
  return {d, ks_p_value(d, n_eff), 0.0};
}

}  // namespace worms::stats
