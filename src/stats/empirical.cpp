#include "stats/empirical.hpp"

#include <algorithm>
#include <cmath>

#include "math/kahan.hpp"
#include "support/check.hpp"

namespace worms::stats {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : sorted_(std::move(samples)) {
  WORMS_EXPECTS(!sorted_.empty());
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalDistribution::cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::quantile(double q) const {
  WORMS_EXPECTS(q >= 0.0 && q <= 1.0);
  const double n = static_cast<double>(sorted_.size());
  if (sorted_.size() == 1) return sorted_.front();
  const double h = (n - 1.0) * q;
  const auto lo = static_cast<std::size_t>(std::floor(h));
  const auto hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = h - std::floor(h);
  return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

double EmpiricalDistribution::mean() const {
  math::KahanSum acc;
  for (double x : sorted_) acc.add(x);
  return acc.value() / static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::variance() const {
  WORMS_EXPECTS(sorted_.size() >= 2);
  const double mu = mean();
  math::KahanSum acc;
  for (double x : sorted_) acc.add((x - mu) * (x - mu));
  return acc.value() / static_cast<double>(sorted_.size() - 1);
}

void FrequencyTable::merge(const FrequencyTable& other) {
  for (const auto& [value, count] : other.counts_) counts_[value] += count;
  total_ += other.total_;
}

std::uint64_t FrequencyTable::count(std::uint64_t value) const {
  const auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

double FrequencyTable::relative_frequency(std::uint64_t value) const {
  WORMS_EXPECTS(total_ > 0);
  return static_cast<double>(count(value)) / static_cast<double>(total_);
}

double FrequencyTable::cumulative_frequency(std::uint64_t value) const {
  WORMS_EXPECTS(total_ > 0);
  std::uint64_t acc = 0;
  for (const auto& [v, c] : counts_) {
    if (v > value) break;
    acc += c;
  }
  return static_cast<double>(acc) / static_cast<double>(total_);
}

std::uint64_t FrequencyTable::min_value() const {
  WORMS_EXPECTS(total_ > 0);
  return counts_.begin()->first;
}

std::uint64_t FrequencyTable::max_value() const {
  WORMS_EXPECTS(total_ > 0);
  return counts_.rbegin()->first;
}

double FrequencyTable::mean() const {
  WORMS_EXPECTS(total_ > 0);
  math::KahanSum acc;
  for (const auto& [v, c] : counts_) {
    acc.add(static_cast<double>(v) * static_cast<double>(c));
  }
  return acc.value() / static_cast<double>(total_);
}

double FrequencyTable::variance() const {
  WORMS_EXPECTS(total_ >= 2);
  const double mu = mean();
  math::KahanSum acc;
  for (const auto& [v, c] : counts_) {
    const double d = static_cast<double>(v) - mu;
    acc.add(d * d * static_cast<double>(c));
  }
  return acc.value() / static_cast<double>(total_ - 1);
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  WORMS_EXPECTS(hi > lo);
  WORMS_EXPECTS(bins >= 1);
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double x) {
  const double idx = std::floor((x - lo_) / width_);
  std::size_t i;
  if (idx < 0.0) {
    i = 0;
  } else if (idx >= static_cast<double>(counts_.size())) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<std::size_t>(idx);
  }
  ++counts_[i];
  ++total_;
}

double Histogram::bin_left(std::size_t i) const {
  WORMS_EXPECTS(i < counts_.size());
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::bin_center(std::size_t i) const { return bin_left(i) + width_ / 2.0; }

double Histogram::density(std::size_t i) const {
  WORMS_EXPECTS(total_ > 0);
  return static_cast<double>(bin_count(i)) / (static_cast<double>(total_) * width_);
}

}  // namespace worms::stats
