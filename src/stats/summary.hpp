// Streaming summary statistics (Welford's online algorithm).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

#include "support/check.hpp"

namespace worms::stats {

/// Numerically stable online mean/variance/min/max accumulator.
class Summary {
 public:
  constexpr Summary() noexcept = default;

  constexpr void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  /// Merges another summary (parallel reduction); Chan et al. update.
  constexpr void merge(const Summary& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] constexpr std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] constexpr double mean() const noexcept { return mean_; }

  /// Unbiased sample variance; requires at least two observations.
  [[nodiscard]] double variance() const {
    WORMS_EXPECTS(count_ >= 2);
    return m2_ / static_cast<double>(count_ - 1);
  }

  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  /// Standard error of the mean.
  [[nodiscard]] double std_error() const { return stddev() / std::sqrt(static_cast<double>(count_)); }

  [[nodiscard]] constexpr double min() const noexcept { return min_; }
  [[nodiscard]] constexpr double max() const noexcept { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace worms::stats
