// Goodness-of-fit tests.  Used (a) in the test suite to validate samplers
// against closed forms, and (b) in the figure benches to quantify how close
// the simulated total-infection distribution is to Borel–Tanner.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace worms::stats {

struct GofResult {
  double statistic = 0.0;  ///< chi-square statistic or KS distance D
  double p_value = 1.0;
  double df = 0.0;  ///< degrees of freedom (chi-square only)
};

/// Pearson chi-square test of observed counts against expected counts.
/// Cells with expected < `min_expected` are pooled into their neighbor to
/// keep the asymptotic distribution valid.  `extra_constraints` is the number
/// of parameters estimated from the data (df = cells − 1 − extra_constraints).
[[nodiscard]] GofResult chi_square_test(const std::vector<double>& observed,
                                        const std::vector<double>& expected,
                                        int extra_constraints = 0, double min_expected = 5.0);

/// One-sample Kolmogorov–Smirnov test of `samples` against a continuous CDF.
/// The p-value uses the asymptotic Kolmogorov distribution with the
/// Stephens small-sample correction.
[[nodiscard]] GofResult ks_test_one_sample(std::vector<double> samples,
                                           const std::function<double(double)>& cdf);

/// Two-sample Kolmogorov–Smirnov test.
[[nodiscard]] GofResult ks_test_two_sample(std::vector<double> a, std::vector<double> b);

}  // namespace worms::stats
