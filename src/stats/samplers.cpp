#include "stats/samplers.hpp"

#include <cmath>

#include "math/specfun.hpp"
#include "support/check.hpp"

namespace worms::stats {
namespace {

/// Stirling series tail f_c(k) = ln k! − [k ln k − k + ½ ln(2πk)].
/// Exact table for k < 10, two-term asymptotic beyond (error < 4e-9).
double stirling_tail(double k) {
  static const double table[] = {0.08106146679532726, 0.04134069595540929, 0.02767792568499834,
                                 0.02079067210376509, 0.01664469118982119, 0.01387612882307075,
                                 0.01189670994589177, 0.01041126526197209, 0.009255462182712733,
                                 0.008330563433362871};
  if (k < 10.0) return table[static_cast<int>(k)];
  const double kp1sq = (k + 1.0) * (k + 1.0);
  return (1.0 / 12.0 - (1.0 / 360.0 - 1.0 / 1260.0 / kp1sq) / kp1sq) / (k + 1.0);
}

/// BINV: sequential inversion.  Expected work O(n·p); used when n·p is small.
std::uint64_t binomial_binv(support::Rng& rng, std::uint64_t n, double p) {
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = static_cast<double>(n + 1) * s;
  double r = std::pow(q, static_cast<double>(n));
  double u = rng.uniform();
  std::uint64_t x = 0;
  // The loop terminates because r eventually underflows slower than u shrinks;
  // the x > n guard restarts on the (measure-zero) numerical corner.
  while (true) {
    if (u <= r) return x;
    u -= r;
    ++x;
    if (x > n) {  // numerical fallback: restart with a fresh uniform
      r = std::pow(q, static_cast<double>(n));
      u = rng.uniform();
      x = 0;
      continue;
    }
    r *= a / static_cast<double>(x) - s;
  }
}

/// BTRS (Hörmann 1993): transformed rejection.  Requires p <= 0.5, n·p >= 10.
std::uint64_t binomial_btrs(support::Rng& rng, std::uint64_t n, double p) {
  const double nd = static_cast<double>(n);
  const double q = 1.0 - p;
  const double spq = std::sqrt(nd * p * q);
  const double b = 1.15 + 2.53 * spq;
  const double a = -0.0873 + 0.0248 * b + 0.01 * p;
  const double c = nd * p + 0.5;
  const double v_r = 0.92 - 4.2 / b;
  const double r = p / q;
  const double alpha = (2.83 + 5.1 / b) * spq;
  const double m = std::floor((nd + 1.0) * p);

  while (true) {
    const double u = rng.uniform() - 0.5;
    double v = rng.uniform();
    const double us = 0.5 - std::fabs(u);
    const double kd = std::floor((2.0 * a / us + b) * u + c);
    if (kd < 0.0 || kd > nd) continue;
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(kd);
    v = std::log(v * alpha / (a / (us * us) + b));
    const double upper =
        (m + 0.5) * std::log((m + 1.0) / (r * (nd - m + 1.0))) +
        (nd + 1.0) * std::log((nd - m + 1.0) / (nd - kd + 1.0)) +
        (kd + 0.5) * std::log(r * (nd - kd + 1.0) / (kd + 1.0)) + stirling_tail(m) +
        stirling_tail(nd - m) - stirling_tail(kd) - stirling_tail(nd - kd);
    if (v <= upper) return static_cast<std::uint64_t>(kd);
  }
}

/// Knuth's multiplicative Poisson; O(λ) expected.
std::uint64_t poisson_knuth(support::Rng& rng, double lambda) {
  const double limit = std::exp(-lambda);
  double prod = rng.uniform_pos();
  std::uint64_t k = 0;
  while (prod > limit) {
    prod *= rng.uniform_pos();
    ++k;
  }
  return k;
}

/// PTRS (Hörmann 1993): transformed rejection for Poisson, λ >= 10.
std::uint64_t poisson_ptrs(support::Rng& rng, double lambda) {
  const double b = 0.931 + 2.53 * std::sqrt(lambda);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  const double log_lambda = std::log(lambda);

  while (true) {
    const double u = rng.uniform() - 0.5;
    const double v = rng.uniform();
    const double us = 0.5 - std::fabs(u);
    const double kd = std::floor((2.0 * a / us + b) * u + lambda + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(kd);
    if (kd < 0.0 || (us < 0.013 && v > us)) continue;
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        kd * log_lambda - lambda - math::log_gamma(kd + 1.0)) {
      return static_cast<std::uint64_t>(kd);
    }
  }
}

}  // namespace

std::uint64_t sample_binomial(support::Rng& rng, std::uint64_t n, double p) {
  WORMS_EXPECTS(p >= 0.0 && p <= 1.0);
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  if (p > 0.5) return n - sample_binomial(rng, n, 1.0 - p);
  const double np = static_cast<double>(n) * p;
  if (np < 10.0) return binomial_binv(rng, n, p);
  return binomial_btrs(rng, n, p);
}

std::uint64_t sample_poisson(support::Rng& rng, double lambda) {
  WORMS_EXPECTS(lambda >= 0.0);
  if (lambda == 0.0) return 0;
  if (lambda < 10.0) return poisson_knuth(rng, lambda);
  return poisson_ptrs(rng, lambda);
}

std::uint64_t sample_geometric_trials(support::Rng& rng, double p) {
  WORMS_EXPECTS(p > 0.0 && p <= 1.0);
  if (p == 1.0) return 1;
  // T = 1 + floor(ln U / ln(1-p)); the +1 makes the support start at one trial.
  const double u = rng.uniform_pos();
  const double failures = std::floor(std::log(u) / std::log1p(-p));
  return 1 + static_cast<std::uint64_t>(failures);
}

double sample_exponential(support::Rng& rng, double rate) {
  WORMS_EXPECTS(rate > 0.0);
  return -std::log(rng.uniform_pos()) / rate;
}

double sample_normal(support::Rng& rng) {
  // Marsaglia polar method; the spare variate is intentionally discarded to
  // keep the sampler stateless.
  while (true) {
    const double x = 2.0 * rng.uniform() - 1.0;
    const double y = 2.0 * rng.uniform() - 1.0;
    const double s = x * x + y * y;
    if (s > 0.0 && s < 1.0) {
      return x * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double sample_lognormal(support::Rng& rng, double mu, double sigma) {
  WORMS_EXPECTS(sigma >= 0.0);
  return std::exp(mu + sigma * sample_normal(rng));
}

double sample_pareto(support::Rng& rng, double x_min, double alpha) {
  WORMS_EXPECTS(x_min > 0.0);
  WORMS_EXPECTS(alpha > 0.0);
  return x_min / std::pow(rng.uniform_pos(), 1.0 / alpha);
}

double sample_gamma(support::Rng& rng, double shape) {
  WORMS_EXPECTS(shape > 0.0);
  if (shape < 1.0) {
    // Boost: X_{a} = X_{a+1} · U^{1/a}.
    const double u = rng.uniform_pos();
    return sample_gamma(rng, shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang (2000).
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x;
    double v;
    do {
      x = sample_normal(rng);
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = rng.uniform_pos();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v;
  }
}

double sample_erlang(support::Rng& rng, std::uint64_t n, double rate) {
  WORMS_EXPECTS(n >= 1);
  WORMS_EXPECTS(rate > 0.0);
  if (n <= 16) {
    // Product-of-uniforms form of summing n exponentials.
    double prod = 1.0;
    for (std::uint64_t i = 0; i < n; ++i) prod *= rng.uniform_pos();
    return -std::log(prod) / rate;
  }
  return sample_gamma(rng, static_cast<double>(n)) / rate;
}

AliasTable::AliasTable(const std::vector<double>& weights) {
  WORMS_EXPECTS(!weights.empty());
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    WORMS_EXPECTS(w >= 0.0);
    total += w;
  }
  WORMS_EXPECTS(total > 0.0);

  normalized_.resize(n);
  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  std::vector<double> scaled(n);
  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    normalized_[i] = weights[i] / total;
    scaled[i] = normalized_[i] * static_cast<double>(n);
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  for (std::uint32_t i : large) prob_[i] = 1.0;
  for (std::uint32_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

std::size_t AliasTable::sample(support::Rng& rng) const {
  const std::size_t i = static_cast<std::size_t>(rng.below(prob_.size()));
  return rng.uniform() < prob_[i] ? i : alias_[i];
}

}  // namespace worms::stats
