// Simulation time.  One unit = one second; helpers convert the paper's
// minute/hour/day axes.  Wall-clock timing is worms::support::Stopwatch.
#pragma once

namespace worms::sim {

using SimTime = double;  ///< seconds of simulated time

inline constexpr SimTime kSecond = 1.0;
inline constexpr SimTime kMinute = 60.0;
inline constexpr SimTime kHour = 3600.0;
inline constexpr SimTime kDay = 86400.0;

[[nodiscard]] constexpr double to_minutes(SimTime t) noexcept { return t / kMinute; }
[[nodiscard]] constexpr double to_hours(SimTime t) noexcept { return t / kHour; }
[[nodiscard]] constexpr double to_days(SimTime t) noexcept { return t / kDay; }

}  // namespace worms::sim
