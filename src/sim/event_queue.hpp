// Priority queue of timed events with deterministic tie-breaking.
//
// A 4-ary implicit heap over (time, seq, payload).  Equal-time events pop in
// insertion order (seq), which makes whole simulations bit-reproducible under
// a fixed seed — a property the cross-engine validation tests rely on.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "support/check.hpp"

namespace worms::sim {

template <typename Payload>
class EventQueue {
 public:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Payload payload;
  };

  void push(SimTime time, Payload payload) {
    heap_.push_back(Entry{time, next_seq_++, std::move(payload)});
    sift_up(heap_.size() - 1);
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  [[nodiscard]] const Entry& top() const {
    WORMS_EXPECTS(!heap_.empty());
    return heap_.front();
  }

  Entry pop() {
    WORMS_EXPECTS(!heap_.empty());
    Entry out = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return out;
  }

  void clear() noexcept {
    heap_.clear();
    // next_seq_ is deliberately not reset: sequence numbers stay unique for
    // the lifetime of the queue.
  }

 private:
  static constexpr std::size_t kArity = 4;

  [[nodiscard]] static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    while (true) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= heap_.size()) break;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + kArity, heap_.size());
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace worms::sim
