// Discrete-event simulation engine.
//
// Two flavours share the event queue:
//   * Engine<Payload>    — POD payloads dispatched to a handler callable;
//                          zero allocation per event, used by the worm
//                          simulators (millions of events).
//   * CallbackEngine     — std::function payloads; convenient for examples,
//                          tests, and low-event-rate models.
#pragma once

#include <functional>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"
#include "support/check.hpp"

namespace worms::sim {

/// Core engine: a clock plus an event queue of `Payload`s.  The handler is
/// supplied per run() call: `handler(SimTime now, const Payload&)`.
template <typename Payload>
class Engine {
 public:
  /// Schedules a payload at absolute time `at` (must not be in the past).
  void schedule_at(SimTime at, Payload payload) {
    WORMS_EXPECTS(at >= now_);
    queue_.push(at, std::move(payload));
  }

  /// Schedules a payload `delay` seconds from now.
  void schedule_in(SimTime delay, Payload payload) {
    WORMS_EXPECTS(delay >= 0.0);
    queue_.push(now_ + delay, std::move(payload));
  }

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }

  /// Requests that run() return after the current event completes.
  void stop() noexcept { stopped_ = true; }

  /// Runs until the queue drains, `horizon` is reached, or stop() is called.
  /// Events scheduled beyond the horizon stay in the queue (the clock never
  /// passes the horizon).  A stop() issued *before* run() makes it return
  /// immediately; the stop request is consumed when run() returns.
  template <typename Handler>
  void run(Handler&& handler, SimTime horizon = 1e300) {
    while (!stopped_ && !queue_.empty()) {
      if (queue_.top().time > horizon) {
        now_ = horizon;
        return;
      }
      auto entry = queue_.pop();
      WORMS_ENSURES(entry.time >= now_);
      now_ = entry.time;
      ++processed_;
      handler(now_, entry.payload);
    }
    stopped_ = false;
  }

  /// Drops all pending events (the clock is preserved).
  void clear_pending() noexcept { queue_.clear(); }

 private:
  EventQueue<Payload> queue_;
  SimTime now_ = 0.0;
  std::uint64_t processed_ = 0;
  bool stopped_ = false;
};

/// Convenience engine whose payloads are callbacks.
class CallbackEngine {
 public:
  using Callback = std::function<void()>;

  void schedule_at(SimTime at, Callback cb) { engine_.schedule_at(at, std::move(cb)); }
  void schedule_in(SimTime delay, Callback cb) { engine_.schedule_in(delay, std::move(cb)); }

  [[nodiscard]] SimTime now() const noexcept { return engine_.now(); }
  [[nodiscard]] bool empty() const noexcept { return engine_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return engine_.events_processed();
  }

  void stop() noexcept { engine_.stop(); }

  void run(SimTime horizon = 1e300) {
    engine_.run([](SimTime, const Callback& cb) { cb(); }, horizon);
  }

 private:
  Engine<Callback> engine_;
};

}  // namespace worms::sim
