// Deterministic pseudo-random number generation for the whole project.
//
// Design goals (see DESIGN.md §5 "Determinism"):
//   * every stochastic component draws from an explicitly seeded stream;
//   * Monte Carlo run k derives its stream from (base_seed, k) so results do
//     not depend on thread scheduling or run order;
//   * the generator is fast enough to drive hundreds of millions of scan
//     events (xoshiro256++, ~1 ns/draw).
//
// The implementation is self-contained (no <random> engine state), but the
// class satisfies std::uniform_random_bit_generator so it can be plugged into
// standard distributions when convenient.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "support/check.hpp"

namespace worms::support {

/// SplitMix64 step: the standard 64-bit finalizer-based generator.
/// Used for seeding xoshiro and for deriving independent per-run seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Derives a well-mixed 64-bit seed from a base seed and a stream index.
/// Two distinct (seed, stream) pairs give independent-looking streams.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) noexcept {
  std::uint64_t s = base;
  std::uint64_t a = splitmix64(s);
  s ^= stream * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL;
  std::uint64_t b = splitmix64(s);
  return a ^ (b + 0x632be59bd9b4e019ULL);
}

/// xoshiro256++ 1.0 by Blackman & Vigna.  Period 2^256 − 1.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64, per the reference code.
  explicit constexpr Xoshiro256pp(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Jump function: advances the stream by 2^128 draws.  Lets one seed yield
  /// many provably non-overlapping substreams.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL,
                                                    0xa9582618e03fc9aaULL, 0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc = {0, 0, 0, 0};
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (1ULL << bit)) {
          for (int i = 0; i < 4; ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Project-wide RNG facade: a seeded xoshiro256++ stream plus the uniform
/// conversions everything else builds on.  Distribution samplers live in
/// worms::stats; this class stays minimal on purpose.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept : gen_(seed) {}

  /// Independent stream for Monte Carlo run `stream` under `base` seed.
  [[nodiscard]] static constexpr Rng for_stream(std::uint64_t base, std::uint64_t stream) noexcept {
    return Rng(derive_seed(base, stream));
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return Xoshiro256pp::min(); }
  [[nodiscard]] static constexpr result_type max() noexcept { return Xoshiro256pp::max(); }

  constexpr result_type operator()() noexcept { return gen_(); }

  /// Uniform 64-bit word.
  [[nodiscard]] constexpr std::uint64_t u64() noexcept { return gen_(); }

  /// Uniform 32-bit word (high bits of the 64-bit draw; xoshiro's low bits
  /// are fine too, but high bits are the conservative choice).
  [[nodiscard]] constexpr std::uint32_t u32() noexcept {
    return static_cast<std::uint32_t>(gen_() >> 32);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] constexpr double uniform() noexcept {
    return static_cast<double>(gen_() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1]; useful for -log(u) style transforms where a
  /// zero would produce infinity.
  [[nodiscard]] constexpr double uniform_pos() noexcept {
    return (static_cast<double>(gen_() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) by Lemire's multiply-shift rejection
  /// method — unbiased and branch-light.  `bound` must be positive ([0, 0)
  /// is empty; the old behaviour of silently returning 0 hid caller bugs).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  [[nodiscard]] std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    WORMS_EXPECTS(lo <= hi);
    const std::uint64_t span = hi - lo + 1;
    return span == 0 ? u64() : lo + below(span);  // span == 0 ⇔ full 2^64 range
  }

  /// Bernoulli(prob) draw.
  [[nodiscard]] constexpr bool bernoulli(double prob) noexcept { return uniform() < prob; }

  /// Advances this stream by 2^128 draws (see Xoshiro256pp::jump).
  constexpr void jump() noexcept { gen_.jump(); }

 private:
  Xoshiro256pp gen_;
};

}  // namespace worms::support
