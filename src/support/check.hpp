// Contract-check helpers in the spirit of the C++ Core Guidelines' GSL
// `Expects` / `Ensures`.  Violations throw rather than abort so that tests can
// assert on them and long-running experiment harnesses can fail one run
// without killing the whole sweep.
#pragma once

#include <stdexcept>
#include <string>

namespace worms::support {

/// Thrown when a precondition (`WORMS_EXPECTS`) is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a postcondition or invariant (`WORMS_ENSURES`) is violated.
class PostconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void precondition_failure(const char* cond, const char* file, int line) {
  throw PreconditionError(std::string("precondition failed: ") + cond + " at " + file + ":" +
                          std::to_string(line));
}

[[noreturn]] inline void postcondition_failure(const char* cond, const char* file, int line) {
  throw PostconditionError(std::string("postcondition failed: ") + cond + " at " + file + ":" +
                           std::to_string(line));
}

}  // namespace worms::support

/// Precondition check: evaluates in all build types (the experiments are
/// stochastic; silent corruption is far worse than the branch cost).
#define WORMS_EXPECTS(cond)                                                \
  do {                                                                     \
    if (!(cond)) ::worms::support::precondition_failure(#cond, __FILE__, __LINE__); \
  } while (false)

/// Postcondition / invariant check.
#define WORMS_ENSURES(cond)                                                 \
  do {                                                                      \
    if (!(cond)) ::worms::support::postcondition_failure(#cond, __FILE__, __LINE__); \
  } while (false)
