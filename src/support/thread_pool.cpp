#include "support/thread_pool.hpp"

#include <utility>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace worms::support {

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool::ThreadPool(unsigned thread_count) {
  WORMS_EXPECTS(thread_count >= 1);
  workers_.reserve(thread_count);
  for (unsigned i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::instrument(obs::Registry& registry, const std::string& prefix) {
  tasks_total_.store(&registry.counter(prefix + "_tasks_total"), std::memory_order_release);
  waits_total_.store(&registry.counter(prefix + "_waits_total"), std::memory_order_release);
  task_seconds_.store(&registry.histogram(prefix + "_task_seconds"),
                      std::memory_order_release);
}

void ThreadPool::instrument_trace(obs::Tracer& tracer, std::uint32_t base_tid) {
  trace_base_tid_.store(base_tid, std::memory_order_relaxed);
  tracer_.store(&tracer, std::memory_order_release);
}

void ThreadPool::submit(std::function<void()> job) {
  WORMS_EXPECTS(job != nullptr);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    WORMS_EXPECTS(!stop_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  // Resolved lazily once a job has been popped: the pop happens-after the
  // submit, which happens-after any instrument_trace the caller issued first,
  // so every job a caller traces runs with its ring in place.  Each worker
  // owns ring base_tid + worker_index — single-writer by index.
  obs::TraceRing* trace = nullptr;
  bool trace_waits = false;
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (queue_.empty() && !stop_) {
        if (obs::Counter* waits = waits_total_.load(std::memory_order_relaxed)) {
          waits->add(1, worker_index);
        }
        if (trace != nullptr && trace_waits) trace->instant("pool_wait");
        work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      }
      if (queue_.empty()) return;  // stop requested and queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    if (trace == nullptr) {
      if (obs::Tracer* tracer = tracer_.load(std::memory_order_acquire)) {
        trace = &tracer->ring(trace_base_tid_.load(std::memory_order_relaxed) +
                              static_cast<std::uint32_t>(worker_index));
        trace_waits = tracer->wall_clock();  // waits are noise in synthetic time
      }
    }
    if (obs::Counter* tasks = tasks_total_.load(std::memory_order_relaxed)) {
      tasks->add(1, worker_index);
    }
    try {
      WORMS_TRACE_SPAN(trace, "pool_task");
      if (obs::Histogram* latency = task_seconds_.load(std::memory_order_acquire)) {
        const Stopwatch watch;
        job();
        latency->record(watch.elapsed_seconds(), worker_index);
      } else {
        job();
      }
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace worms::support
