#include "support/thread_pool.hpp"

#include <utility>

#include "support/check.hpp"

namespace worms::support {

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1u : n;
}

ThreadPool::ThreadPool(unsigned thread_count) {
  WORMS_EXPECTS(thread_count >= 1);
  workers_.reserve(thread_count);
  for (unsigned i = 0; i < thread_count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> job) {
  WORMS_EXPECTS(job != nullptr);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    WORMS_EXPECTS(!stop_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
  if (first_error_) {
    std::exception_ptr err = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop requested and queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    try {
      job();
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace worms::support
