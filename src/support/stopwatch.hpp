// Monotonic wall-clock stopwatch for harness timing (bench output, Monte
// Carlo progress).  Simulation time is a separate concept — see worms::sim.
#pragma once

#include <chrono>

namespace worms::support {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  void reset() noexcept { start_ = clock::now(); }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace worms::support
