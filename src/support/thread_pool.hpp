// Fixed-size worker thread pool for deterministic fan-out/fan-in workloads.
//
// The pool is intentionally minimal: submit() enqueues fire-and-forget jobs,
// wait_idle() blocks until every submitted job has finished (rethrowing the
// first exception any job raised), and the destructor drains the queue before
// joining.  Consumers that need deterministic results (see
// analysis::run_monte_carlo) must make determinism a property of the *work
// decomposition*, not of the scheduling: the pool gives no ordering
// guarantees beyond "every job runs exactly once".
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace worms::obs {
class Registry;
class Counter;
class Histogram;
class Tracer;
class TraceRing;
}  // namespace worms::obs

namespace worms::support {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers (must be >= 1).
  explicit ThreadPool(unsigned thread_count);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; any worker may pick it up, in any order.
  void submit(std::function<void()> job);

  /// Wires this pool into `registry` (DESIGN.md §8): `<prefix>_tasks_total`
  /// (jobs executed), `<prefix>_waits_total` (times a worker blocked on an
  /// empty queue), and the `<prefix>_task_seconds` latency histogram of
  /// successfully completed jobs.  Recording is wait-free (each worker owns
  /// a counter cell); uninstrumented pools pay only a null check.
  void instrument(obs::Registry& registry, const std::string& prefix);

  /// Wires this pool into a flight recorder (DESIGN.md §9): worker `w`
  /// records into `tracer.ring(base_tid + w)` — a "pool_task" span around
  /// every job, plus a "pool_wait" instant each time the worker blocks on an
  /// empty queue (wall-clock tracers only; waits are scheduling noise in
  /// synthetic time).  The tracer must outlive the pool.
  void instrument_trace(obs::Tracer& tracer, std::uint32_t base_tid);

  /// Blocks until the queue is empty and no job is executing.  If any job
  /// threw, rethrows the first such exception (later ones are dropped).
  void wait_idle();

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// std::thread::hardware_concurrency with the "0 = unknown" case mapped
  /// to 1, so callers can use it directly as a thread count.
  [[nodiscard]] static unsigned hardware_threads() noexcept;

 private:
  void worker_loop(std::size_t worker_index);

  // Atomic so instrument() may race with running workers (pointers flip
  // null → valid exactly once; relaxed loads suffice).
  std::atomic<obs::Counter*> tasks_total_{nullptr};
  std::atomic<obs::Counter*> waits_total_{nullptr};
  std::atomic<obs::Histogram*> task_seconds_{nullptr};
  std::atomic<obs::Tracer*> tracer_{nullptr};
  std::atomic<std::uint32_t> trace_base_tid_{0};

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace worms::support
