// Fixed-size worker thread pool for deterministic fan-out/fan-in workloads.
//
// The pool is intentionally minimal: submit() enqueues fire-and-forget jobs,
// wait_idle() blocks until every submitted job has finished (rethrowing the
// first exception any job raised), and the destructor drains the queue before
// joining.  Consumers that need deterministic results (see
// analysis::run_monte_carlo) must make determinism a property of the *work
// decomposition*, not of the scheduling: the pool gives no ordering
// guarantees beyond "every job runs exactly once".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace worms::support {

class ThreadPool {
 public:
  /// Spawns `thread_count` workers (must be >= 1).
  explicit ThreadPool(unsigned thread_count);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job; any worker may pick it up, in any order.
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and no job is executing.  If any job
  /// threw, rethrows the first such exception (later ones are dropped).
  void wait_idle();

  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// std::thread::hardware_concurrency with the "0 = unknown" case mapped
  /// to 1, so callers can use it directly as a thread count.
  [[nodiscard]] static unsigned hardware_threads() noexcept;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  std::exception_ptr first_error_;
  bool stop_ = false;
};

}  // namespace worms::support
