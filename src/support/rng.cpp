#include "support/rng.hpp"

#include "support/check.hpp"

namespace worms::support {

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless method.
  WORMS_EXPECTS(bound > 0);
  while (true) {
    const std::uint64_t x = gen_();
    const unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound) return static_cast<std::uint64_t>(m >> 64);
    // Rejection zone: only entered when low < bound, i.e. with probability
    // (2^64 mod bound) / 2^64 — negligible for the bounds we use.
    const std::uint64_t threshold = (0 - bound) % bound;
    if (low >= threshold) return static_cast<std::uint64_t>(m >> 64);
  }
}

}  // namespace worms::support
