// Minimal command-line parsing for the wormctl tool: a subcommand followed by
// --flag value / --flag=value options.  No external dependencies, strict by
// default (unknown flags are errors), typed accessors with defaults.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace worms::support {

class CliArgs {
 public:
  /// Parses argv[1..): the first non-flag token is the subcommand, the rest
  /// must be `--name value` or `--name=value` pairs (a flag followed by
  /// another flag or end-of-line is treated as boolean true).
  /// Throws PreconditionError on malformed input.
  static CliArgs parse(int argc, const char* const* argv);

  [[nodiscard]] const std::string& command() const noexcept { return command_; }

  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed accessors; throw PreconditionError when the flag is present but
  /// unparseable.  The `fallback` is returned when the flag is absent.
  [[nodiscard]] std::string get_string(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const;
  /// Like get_u64 but rejects values over 2^32-1 — use for flags that feed
  /// 32-bit fields so out-of-range input fails loudly instead of truncating.
  [[nodiscard]] std::uint32_t get_u32(const std::string& name, std::uint32_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback = false) const;

  /// Flags that were provided but never read — lets the tool reject typos.
  [[nodiscard]] std::vector<std::string> unconsumed() const;

 private:
  std::string command_;
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace worms::support
