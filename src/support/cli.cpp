#include "support/cli.hpp"

#include <charconv>

#include "support/check.hpp"

namespace worms::support {

CliArgs CliArgs::parse(int argc, const char* const* argv) {
  CliArgs out;
  int i = 1;
  if (i < argc && argv[i][0] != '-') {
    out.command_ = argv[i];
    ++i;
  }
  while (i < argc) {
    std::string token = argv[i];
    WORMS_EXPECTS(token.size() > 2 && token[0] == '-' && token[1] == '-');
    token = token.substr(2);

    const auto eq = token.find('=');
    if (eq != std::string::npos) {
      out.flags_[token.substr(0, eq)] = token.substr(eq + 1);
      ++i;
      continue;
    }
    // `--flag value` unless the next token is another flag (boolean form).
    if (i + 1 < argc && !(argv[i + 1][0] == '-' && argv[i + 1][1] == '-')) {
      out.flags_[token] = argv[i + 1];
      i += 2;
    } else {
      out.flags_[token] = "true";
      ++i;
    }
  }
  return out;
}

bool CliArgs::has(const std::string& name) const {
  const bool present = flags_.count(name) != 0;
  if (present) consumed_[name] = true;
  return present;
}

std::string CliArgs::get_string(const std::string& name, const std::string& fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  consumed_[name] = true;
  return it->second;
}

std::uint64_t CliArgs::get_u64(const std::string& name, std::uint64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  consumed_[name] = true;
  std::uint64_t value = 0;
  const auto& s = it->second;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec == std::errc::result_out_of_range) {
    throw PreconditionError("--" + name + ": value '" + s + "' is too large");
  }
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw PreconditionError("--" + name + ": expected a non-negative integer, got '" + s + "'");
  }
  return value;
}

std::uint32_t CliArgs::get_u32(const std::string& name, std::uint32_t fallback) const {
  const std::uint64_t value = get_u64(name, fallback);
  if (value > UINT32_MAX) {
    throw PreconditionError("--" + name + ": value " + flags_.at(name) +
                            " does not fit in 32 bits");
  }
  return static_cast<std::uint32_t>(value);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  consumed_[name] = true;
  std::size_t used = 0;
  double value = 0.0;
  bool ok = true;
  try {
    value = std::stod(it->second, &used);
  } catch (const std::exception&) {
    ok = false;
  }
  if (!ok || used != it->second.size()) {
    throw PreconditionError("--" + name + ": expected a number, got '" + it->second + "'");
  }
  return value;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  consumed_[name] = true;
  WORMS_EXPECTS(it->second == "true" || it->second == "false" || it->second == "1" ||
                it->second == "0");
  return it->second == "true" || it->second == "1";
}

std::vector<std::string> CliArgs::unconsumed() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : flags_) {
    if (!consumed_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace worms::support
