#include "containment/dynamic_quarantine.hpp"

#include "support/check.hpp"

namespace worms::containment {

DynamicQuarantinePolicy::DynamicQuarantinePolicy(const Config& config)
    : config_(config), rng_(config.seed) {
  WORMS_EXPECTS(config.alarm_probability >= 0.0 && config.alarm_probability <= 1.0);
  WORMS_EXPECTS(config.quarantine_time > 0.0);
}

core::ScanDecision DynamicQuarantinePolicy::on_scan(net::HostId host, sim::SimTime now,
                                                    net::Ipv4Address) {
  if (host >= quarantined_until_.size()) {
    quarantined_until_.resize(static_cast<std::size_t>(host) + 1, -1.0);
  }
  sim::SimTime& until = quarantined_until_[host];
  if (now < until) return core::ScanDecision::drop();

  if (rng_.bernoulli(config_.alarm_probability)) {
    ++alarms_;
    until = now + config_.quarantine_time;
    return core::ScanDecision::drop();
  }
  return core::ScanDecision::allow();
}

void DynamicQuarantinePolicy::on_host_restored(net::HostId host, sim::SimTime) {
  if (host < quarantined_until_.size()) quarantined_until_[host] = -1.0;
}

std::string DynamicQuarantinePolicy::name() const {
  return "dynamic-quarantine(p=" + std::to_string(config_.alarm_probability) +
         ",T=" + std::to_string(config_.quarantine_time) + "s)";
}

std::unique_ptr<core::ContainmentPolicy> DynamicQuarantinePolicy::clone() const {
  return std::make_unique<DynamicQuarantinePolicy>(config_);
}

bool DynamicQuarantinePolicy::is_quarantined(net::HostId host, sim::SimTime now) const {
  return host < quarantined_until_.size() && now < quarantined_until_[host];
}

}  // namespace worms::containment
