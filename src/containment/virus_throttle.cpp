#include "containment/virus_throttle.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace worms::containment {

VirusThrottlePolicy::VirusThrottlePolicy(const Config& config) : config_(config) {
  WORMS_EXPECTS(config.working_set_size >= 1);
  WORMS_EXPECTS(config.tick > 0.0);
  WORMS_EXPECTS(config.detect_queue_length >= 1);
}

bool VirusThrottlePolicy::in_working_set(const HostThrottle& t, std::uint32_t addr) const {
  return std::find(t.working_set.begin(), t.working_set.end(), addr) != t.working_set.end();
}

void VirusThrottlePolicy::touch_working_set(HostThrottle& t, std::uint32_t addr) {
  const auto it = std::find(t.working_set.begin(), t.working_set.end(), addr);
  if (it != t.working_set.end()) t.working_set.erase(it);
  t.working_set.push_front(addr);
  if (t.working_set.size() > config_.working_set_size) t.working_set.pop_back();
}

core::ScanDecision VirusThrottlePolicy::on_scan(net::HostId host, sim::SimTime now,
                                                net::Ipv4Address destination) {
  if (host >= hosts_.size()) hosts_.resize(static_cast<std::size_t>(host) + 1);
  HostThrottle& t = hosts_[host];

  if (in_working_set(t, destination.value())) {
    touch_working_set(t, destination.value());  // refresh LRU position
    return core::ScanDecision::allow();
  }

  // New destination: it joins the virtual delay queue, released one per tick.
  // Once released it becomes the host's "recent" traffic, so the working set
  // is updated now with the would-be-released destination.
  touch_working_set(t, destination.value());

  if (t.next_release <= now) {
    t.next_release = now + config_.tick;
    return core::ScanDecision::allow();
  }
  const sim::SimTime delay = t.next_release - now;
  t.next_release += config_.tick;

  const auto queued = static_cast<std::size_t>(std::ceil(delay / config_.tick));
  if (queued >= config_.detect_queue_length) return core::ScanDecision::remove();
  return core::ScanDecision::delayed(delay);
}

void VirusThrottlePolicy::on_host_restored(net::HostId host, sim::SimTime) {
  if (host < hosts_.size()) hosts_[host] = HostThrottle{};
}

std::string VirusThrottlePolicy::name() const {
  return "virus-throttle(ws=" + std::to_string(config_.working_set_size) +
         ",tick=" + std::to_string(config_.tick) + "s)";
}

std::unique_ptr<core::ContainmentPolicy> VirusThrottlePolicy::clone() const {
  return std::make_unique<VirusThrottlePolicy>(config_);
}

std::size_t VirusThrottlePolicy::queue_length(net::HostId host, sim::SimTime now) const {
  if (host >= hosts_.size()) return 0;
  const HostThrottle& t = hosts_[host];
  if (t.next_release <= now) return 0;
  return static_cast<std::size_t>(std::ceil((t.next_release - now) / config_.tick));
}

}  // namespace worms::containment
