// Zou et al.'s dynamic quarantine ("Worm Propagation Modeling and Analysis
// under Dynamic Quarantine Defense", WORM'03), discussed in the paper's §II.
//
// Philosophy: "assume guilty before proven innocent" — any host whose traffic
// looks anomalous is quarantined for a short time and then released, tolerating
// a high false-alarm rate.  We model the underlying (imperfect) anomaly
// detector as a per-scan alarm probability; a quarantined host's traffic is
// dropped until the quarantine expires.  The scheme slows worms down but —
// as both Zou's analysis and the paper note — cannot guarantee containment;
// ablation A2 reproduces that contrast against the scan-limit scheme.
#pragma once

#include <vector>

#include "core/containment_policy.hpp"
#include "support/rng.hpp"

namespace worms::containment {

class DynamicQuarantinePolicy final : public core::ContainmentPolicy {
 public:
  struct Config {
    double alarm_probability = 1e-3;      ///< per-scan detection probability
    sim::SimTime quarantine_time = 10.0;  ///< seconds a quarantined host is muted
    std::uint64_t seed = 0x51ab5eed;      ///< detector noise stream
  };

  explicit DynamicQuarantinePolicy(const Config& config);

  [[nodiscard]] core::ScanDecision on_scan(net::HostId host, sim::SimTime now,
                                           net::Ipv4Address destination) override;
  void on_host_restored(net::HostId host, sim::SimTime now) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<core::ContainmentPolicy> clone() const override;

  [[nodiscard]] bool is_quarantined(net::HostId host, sim::SimTime now) const;
  [[nodiscard]] std::uint64_t total_alarms() const noexcept { return alarms_; }

 private:
  Config config_;
  support::Rng rng_;
  std::vector<sim::SimTime> quarantined_until_;
  std::uint64_t alarms_ = 0;
};

}  // namespace worms::containment
