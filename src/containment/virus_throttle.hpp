// Williamson's virus throttle ("Throttling Viruses", ACSAC 2002), the
// benchmark rate-control defense discussed in the paper's §II and §IV.
//
// Per host:
//   * a small LRU working set of recently contacted destinations — traffic to
//     those passes freely (normal traffic is strongly repetitive);
//   * connections to *new* destinations drain from a delay queue at one per
//     `tick` (canonically 1 s);
//   * a queue longer than `detect_queue_length` signals an epidemic and the
//     host is taken offline.
// Fast scanners are slowed and detected within seconds; worms scanning below
// 1 new destination/s sail through — the paper's argument for budget-based
// (total-scan) rather than rate-based control.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/containment_policy.hpp"

namespace worms::containment {

class VirusThrottlePolicy final : public core::ContainmentPolicy {
 public:
  struct Config {
    std::size_t working_set_size = 5;
    sim::SimTime tick = 1.0;                ///< one new destination per tick
    std::size_t detect_queue_length = 100;  ///< queue length that triggers removal
  };

  explicit VirusThrottlePolicy(const Config& config);

  [[nodiscard]] core::ScanDecision on_scan(net::HostId host, sim::SimTime now,
                                           net::Ipv4Address destination) override;
  void on_host_restored(net::HostId host, sim::SimTime now) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<core::ContainmentPolicy> clone() const override;

  /// Instantaneous queue length for a host (for tests / ablation output).
  [[nodiscard]] std::size_t queue_length(net::HostId host, sim::SimTime now) const;

 private:
  struct HostThrottle {
    std::deque<std::uint32_t> working_set;  // front = most recent
    sim::SimTime next_release = 0.0;
  };

  [[nodiscard]] bool in_working_set(const HostThrottle& t, std::uint32_t addr) const;
  void touch_working_set(HostThrottle& t, std::uint32_t addr);

  Config config_;
  std::vector<HostThrottle> hosts_;
};

}  // namespace worms::containment
