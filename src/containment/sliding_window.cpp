#include "containment/sliding_window.hpp"

#include "support/check.hpp"

namespace worms::containment {

SlidingWindowScanPolicy::SlidingWindowScanPolicy(const Config& config) : config_(config) {
  WORMS_EXPECTS(config.scan_limit >= 1);
  WORMS_EXPECTS(config.window > 0.0);
}

core::ScanDecision SlidingWindowScanPolicy::on_scan(net::HostId host, sim::SimTime now,
                                                    net::Ipv4Address) {
  if (host >= history_.size()) history_.resize(static_cast<std::size_t>(host) + 1);
  auto& hist = history_[host];
  while (!hist.empty() && hist.front() <= now - config_.window) hist.pop_front();
  hist.push_back(now);
  if (hist.size() >= config_.scan_limit) {
    // Same semantics as the tumbling policy: the M-th scan goes out, then
    // the host is pulled for checking.
    return core::ScanDecision::allow_and_remove();
  }
  return core::ScanDecision::allow();
}

void SlidingWindowScanPolicy::on_host_restored(net::HostId host, sim::SimTime) {
  if (host < history_.size()) history_[host].clear();
}

std::string SlidingWindowScanPolicy::name() const {
  return "sliding-window(M=" + std::to_string(config_.scan_limit) + ")";
}

std::unique_ptr<core::ContainmentPolicy> SlidingWindowScanPolicy::clone() const {
  return std::make_unique<SlidingWindowScanPolicy>(config_);
}

std::uint64_t SlidingWindowScanPolicy::count_in_window(net::HostId host,
                                                       sim::SimTime now) const {
  if (host >= history_.size()) return 0;
  const auto& hist = history_[host];
  std::uint64_t count = 0;
  for (auto it = hist.rbegin(); it != hist.rend() && *it > now - config_.window; ++it) ++count;
  return count;
}

}  // namespace worms::containment
