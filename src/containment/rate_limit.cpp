#include "containment/rate_limit.hpp"

#include "support/check.hpp"

namespace worms::containment {

RateLimitPolicy::RateLimitPolicy(double max_rate) {
  WORMS_EXPECTS(max_rate > 0.0);
  interval_ = 1.0 / max_rate;
}

core::ScanDecision RateLimitPolicy::on_scan(net::HostId host, sim::SimTime now,
                                            net::Ipv4Address) {
  if (host >= next_free_.size()) next_free_.resize(static_cast<std::size_t>(host) + 1, 0.0);
  sim::SimTime& next_free = next_free_[host];
  if (next_free <= now) {
    next_free = now + interval_;
    return core::ScanDecision::allow();
  }
  const sim::SimTime delay = next_free - now;
  next_free += interval_;
  return core::ScanDecision::delayed(delay);
}

void RateLimitPolicy::on_host_restored(net::HostId host, sim::SimTime) {
  if (host < next_free_.size()) next_free_[host] = 0.0;
}

std::string RateLimitPolicy::name() const {
  return "rate-limit(" + std::to_string(1.0 / interval_) + "/s)";
}

std::unique_ptr<core::ContainmentPolicy> RateLimitPolicy::clone() const {
  return std::make_unique<RateLimitPolicy>(1.0 / interval_);
}

}  // namespace worms::containment
