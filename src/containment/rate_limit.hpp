// Classic rate limiting (paper §II "Rate-control based countermeasures"):
// a per-host leaky bucket that serializes new connections at a fixed rate.
// Effective against fast scanners, powerless against worms that scan slower
// than the configured rate — exactly the weakness the paper's scheme fixes.
#pragma once

#include <vector>

#include "core/containment_policy.hpp"

namespace worms::containment {

class RateLimitPolicy final : public core::ContainmentPolicy {
 public:
  /// `max_rate` in connections/second (Williamson's canonical setting: 1/s).
  explicit RateLimitPolicy(double max_rate);

  [[nodiscard]] core::ScanDecision on_scan(net::HostId host, sim::SimTime now,
                                           net::Ipv4Address destination) override;
  void on_host_restored(net::HostId host, sim::SimTime now) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<core::ContainmentPolicy> clone() const override;

 private:
  double interval_;  // 1 / max_rate
  std::vector<sim::SimTime> next_free_;
};

}  // namespace worms::containment
