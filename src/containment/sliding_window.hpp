// Sliding-window variant of the paper's scan-budget containment.
//
// The paper's scheme counts unique destinations per *tumbling* containment
// cycle and resets the counter at each boundary (core::ScanCountLimitPolicy).
// That semantics has a boundary exploit the paper does not discuss: a worm
// aware of the cycle schedule can emit M−1 scans just before a boundary and
// another M−1 right after — ~2M scans in an arbitrarily short span — doubling
// the offspring mean during the straddle.  This policy enforces the budget
// over a *sliding* window of the same length: at any instant, no host may
// have contacted more than M destinations within the past `window` seconds.
// Sliding enforcement dominates tumbling (any sliding-compliant history is
// tumbling-compliant) at the cost of per-host timestamp state.
// bench/ablation_window_semantics quantifies the difference.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/containment_policy.hpp"

namespace worms::containment {

class SlidingWindowScanPolicy final : public core::ContainmentPolicy {
 public:
  struct Config {
    std::uint64_t scan_limit = 10'000;           ///< M
    sim::SimTime window = 30.0 * sim::kDay;      ///< enforcement window
  };

  explicit SlidingWindowScanPolicy(const Config& config);

  [[nodiscard]] core::ScanDecision on_scan(net::HostId host, sim::SimTime now,
                                           net::Ipv4Address destination) override;
  void on_host_restored(net::HostId host, sim::SimTime now) override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::unique_ptr<core::ContainmentPolicy> clone() const override;

  /// Scans currently inside the window for a host.
  [[nodiscard]] std::uint64_t count_in_window(net::HostId host, sim::SimTime now) const;

 private:
  Config config_;
  // Per-host timestamps of in-window scans, oldest first.
  std::vector<std::deque<sim::SimTime>> history_;
};

}  // namespace worms::containment
