#include "trace/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace worms::trace {

namespace {
constexpr const char* kHeader = "timestamp,source_host,destination";
}

void write_csv(std::ostream& out, const std::vector<ConnRecord>& records) {
  out << kHeader << '\n';
  for (const ConnRecord& r : records) {
    out << r.timestamp << ',' << r.source_host << ',' << r.destination.to_string() << '\n';
  }
}

void write_csv_file(const std::string& path, const std::vector<ConnRecord>& records) {
  std::ofstream out(path);
  WORMS_EXPECTS(out.good());
  write_csv(out, records);
  WORMS_ENSURES(out.good());
}

std::vector<ConnRecord> read_csv(std::istream& in) {
  std::vector<ConnRecord> records;
  std::string line;
  // A trace file without the header line is not a trace file — an empty
  // stream fails here rather than silently parsing as "no records".
  WORMS_EXPECTS(static_cast<bool>(std::getline(in, line)) && "missing trace header");
  WORMS_EXPECTS(line == kHeader);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::size_t c1 = line.find(',');
    const std::size_t c2 = line.find(',', c1 == std::string::npos ? 0 : c1 + 1);
    WORMS_EXPECTS(c1 != std::string::npos && c2 != std::string::npos);

    ConnRecord rec;
    // timestamp (double); from_chars consuming the whole field rejects the
    // trailing-garbage and embedded-whitespace forms std::stod lets through
    // (e.g. "1.0abc" or " 1.0").
    const char* tb = line.data();
    const char* te = line.data() + c1;
    const auto [tptr, tec] = std::from_chars(tb, te, rec.timestamp);
    WORMS_EXPECTS(tec == std::errc() && tptr == te && "bad timestamp field");
    WORMS_EXPECTS(rec.timestamp >= 0.0);
    // source host (unsigned)
    const char* sb = line.data() + c1 + 1;
    const char* se = line.data() + c2;
    const auto [ptr, ec] = std::from_chars(sb, se, rec.source_host);
    WORMS_EXPECTS(ec == std::errc() && ptr == se && "bad source_host field");
    // destination address
    const auto addr = net::Ipv4Address::parse(std::string_view(line).substr(c2 + 1));
    WORMS_EXPECTS(addr.has_value() && "bad destination field");
    rec.destination = *addr;
    records.push_back(rec);
  }
  return records;
}

std::vector<ConnRecord> read_csv_file(const std::string& path) {
  std::ifstream in(path);
  WORMS_EXPECTS(in.good());
  return read_csv(in);
}

}  // namespace worms::trace
