#include "trace/trace_io.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "support/check.hpp"
#include "trace/binary_io.hpp"

namespace worms::trace {

namespace {

constexpr const char* kHeader = "timestamp,source_host,destination,outcome";
constexpr const char* kHeaderV1 = "timestamp,source_host,destination";

void require_header(std::istream& in, std::string& line) {
  // A trace file without the header line is not a trace file — an empty
  // stream fails here rather than silently parsing as "no records".
  WORMS_EXPECTS(static_cast<bool>(std::getline(in, line)) && "missing trace header");
  if (wtrace_magic_matches(line)) {
    // Binary bytes read as a "header line" means someone pointed the CSV
    // parser at a .wtrace file; fail with the fix, not a parse cascade.
    throw support::PreconditionError(
        "input is a binary .wtrace trace, not CSV; pass it directly (wormctl "
        "auto-detects the format) or run `wormctl trace convert` first");
  }
  WORMS_EXPECTS(is_csv_trace_header(line) && "unrecognized trace header");
}

}  // namespace

const char* csv_trace_header() noexcept { return kHeader; }

bool is_csv_trace_header(std::string_view line) noexcept {
  return line == kHeader || line == kHeaderV1;
}

const char* parse_csv_record_line(const std::string& line, ConnRecord& rec) {
  const std::size_t c1 = line.find(',');
  const std::size_t c2 = line.find(',', c1 == std::string::npos ? 0 : c1 + 1);
  if (c1 == std::string::npos || c2 == std::string::npos) {
    return "expected timestamp,source_host,destination[,outcome]";
  }
  // The outcome column is optional: legacy three-field lines decode with
  // outcome = success, so pre-existing traces stay readable.
  const std::size_t c3 = line.find(',', c2 + 1);
  // timestamp (double); from_chars consuming the whole field rejects the
  // trailing-garbage and embedded-whitespace forms std::stod lets through
  // (e.g. "1.0abc" or " 1.0").
  const char* tb = line.data();
  const char* te = line.data() + c1;
  const auto [tptr, tec] = std::from_chars(tb, te, rec.timestamp);
  if (tec != std::errc() || tptr != te) return "bad timestamp field";
  if (!(rec.timestamp >= 0.0)) return "timestamp must be >= 0";
  // source host (unsigned)
  const char* sb = line.data() + c1 + 1;
  const char* se = line.data() + c2;
  const auto [ptr, ec] = std::from_chars(sb, se, rec.source_host);
  if (ec != std::errc() || ptr != se) return "bad source_host field";
  // destination address
  const std::size_t dest_end = c3 == std::string::npos ? line.size() : c3;
  const auto addr =
      net::Ipv4Address::parse(std::string_view(line).substr(c2 + 1, dest_end - c2 - 1));
  if (!addr.has_value()) return "bad destination field";
  rec.destination = *addr;
  // outcome (0 = success, 1 = failure); strict so damaged lines dead-letter
  rec.outcome = kOutcomeSuccess;
  if (c3 != std::string::npos) {
    const char* ob = line.data() + c3 + 1;
    const char* oe = line.data() + line.size();
    unsigned outcome = 0;
    const auto [optr, oec] = std::from_chars(ob, oe, outcome);
    if (oec != std::errc() || optr != oe || outcome > 1) return "bad outcome field";
    rec.outcome = static_cast<std::uint8_t>(outcome);
  }
  return nullptr;
}

void write_csv(std::ostream& out, const std::vector<ConnRecord>& records) {
  out << kHeader << '\n';
  for (const ConnRecord& r : records) {
    out << r.timestamp << ',' << r.source_host << ',' << r.destination.to_string() << ','
        << static_cast<unsigned>(r.outcome) << '\n';
  }
}

void write_csv_file(const std::string& path, const std::vector<ConnRecord>& records) {
  std::ofstream out(path);
  WORMS_EXPECTS(out.good());
  write_csv(out, records);
  WORMS_ENSURES(out.good());
}

std::vector<ConnRecord> read_csv(std::istream& in) {
  std::vector<ConnRecord> records;
  std::string line;
  require_header(in, line);
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ConnRecord rec;
    const char* error = parse_csv_record_line(line, rec);
    WORMS_EXPECTS(error == nullptr && "malformed trace line");
    records.push_back(rec);
  }
  return records;
}

std::vector<ConnRecord> read_csv_file(const std::string& path) {
  std::ifstream in(path);
  WORMS_EXPECTS(in.good());
  return read_csv(in);
}

RecoveredTrace read_csv_recovering(std::istream& in) {
  RecoveredTrace out;
  std::string line;
  require_header(in, line);
  out.lines_scanned = 1;
  while (std::getline(in, line)) {
    ++out.lines_scanned;
    if (line.empty()) continue;
    ConnRecord rec;
    if (const char* error = parse_csv_record_line(line, rec)) {
      out.bad_lines.push_back({out.lines_scanned, line, error});
    } else {
      out.records.push_back(rec);
    }
  }
  return out;
}

RecoveredTrace read_csv_recovering_file(const std::string& path) {
  std::ifstream in(path);
  WORMS_EXPECTS(in.good());
  return read_csv_recovering(in);
}

}  // namespace worms::trace
