// `.wtrace` — the fixed-width binary connection-trace format (DESIGN.md §10).
//
// CSV is the interchange format; this is the hot path.  A trace the fleet
// pipeline must chew at worm speed (100 M+ records/s) cannot afford text
// parsing per record, so `wormctl trace convert` turns a CSV trace into a
// mmap-able binary file once, and every later run consumes it in blocks.
//
// Layout (all fields little-endian regardless of host byte order):
//
//   offset  size  field
//        0     4  magic 'WTR1' (0x31525457 when read as a LE u32)
//        4     2  format version (writers emit 2; readers accept 1 and 2)
//        6     2  record size in bytes (24 for v2, 16 for v1)
//        8     8  record count
//       16     8  payload checksum (wtrace_checksum over the record bytes)
//       24     8  reserved, must be zero
//       32    rn  records (r = record size from the header)
//
// A v2 record is 24 bytes: IEEE-754 f64 timestamp, u32 source host, u32
// destination address, u8 connection outcome, 7 reserved zero bytes.  A v1
// record is the same without the trailing outcome+reserved 8 bytes; v1 files
// decode with outcome = success.  On little-endian hosts with IEEE doubles
// (every platform we build on) a v2 record's wire image is exactly
// ConnRecord's memory image, so readers and writers move whole blocks with
// memcpy; a big-endian host falls back to per-field byte shuffling and
// produces byte-identical files — the golden-fixture test pins this.
//
// The checksum is FNV-1a-64 folded over 8-byte little-endian words with the
// payload length mixed into the seed: one multiply per 8 bytes instead of
// per byte, so validating a multi-GiB trace costs one streaming pass.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.hpp"

namespace worms::trace {

inline constexpr std::uint32_t kWtraceMagic = 0x31525457u;  // "WTR1"
inline constexpr std::uint16_t kWtraceVersion = 2;
inline constexpr std::size_t kWtraceHeaderBytes = 32;
inline constexpr std::size_t kWtraceRecordBytes = 24;
/// v1 records lacked the outcome byte; still readable (outcome = success).
inline constexpr std::uint16_t kWtraceVersionV1 = 1;
inline constexpr std::size_t kWtraceRecordBytesV1 = 16;

/// Parsed and validated `.wtrace` header.
struct WtraceHeader {
  std::uint64_t record_count = 0;
  std::uint64_t checksum = 0;
  std::uint16_t version = kWtraceVersion;
  /// Record stride in bytes for this file (24 for v2, 16 for v1).
  std::size_t record_size = kWtraceRecordBytes;
};

/// FNV-1a-64 over 8-byte little-endian words, length-seeded.  `size` need not
/// be a multiple of 8 (the tail is zero-padded into one final word).
[[nodiscard]] std::uint64_t wtrace_checksum(const void* data, std::size_t size) noexcept;

/// Serializes one record into its 24-byte wire image / back.  Byte-identical
/// output on every host (the explicit little-endian encode is the guard).
void encode_wtrace_record(const ConnRecord& record, char out[kWtraceRecordBytes]) noexcept;
[[nodiscard]] ConnRecord decode_wtrace_record(const char* in) noexcept;

/// Decodes one legacy 16-byte v1 record (outcome = success).
[[nodiscard]] ConnRecord decode_wtrace_record_v1(const char* in) noexcept;

/// Writes header + records.  The stream must be opened in binary mode.
void write_wtrace(std::ostream& out, std::span<const ConnRecord> records);
void write_wtrace_file(const std::string& path, std::span<const ConnRecord> records);

/// Parses a header blob (>= kWtraceHeaderBytes bytes).  Throws
/// support::PreconditionError on bad magic/version/record size/reserved field.
[[nodiscard]] WtraceHeader parse_wtrace_header(std::string_view bytes);

/// Reads a whole trace, validating the header and checksum; throws
/// support::PreconditionError on truncation, count mismatch, or corruption.
[[nodiscard]] std::vector<ConnRecord> read_wtrace(std::istream& in);
[[nodiscard]] std::vector<ConnRecord> read_wtrace_file(const std::string& path);

/// True when `prefix` (>= 4 bytes of a file) starts with the wtrace magic.
[[nodiscard]] bool wtrace_magic_matches(std::string_view prefix) noexcept;

/// Magic sniff on a file: true when it exists and starts with 'WTR1'.
/// The cheap "is this binary?" test wormctl runs before choosing a parser.
[[nodiscard]] bool looks_like_wtrace_file(const std::string& path);

}  // namespace worms::trace
