#include "trace/binary_io.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <type_traits>

#include "support/check.hpp"

namespace worms::trace {

namespace {

// The memcpy fast path relies on ConnRecord's memory image matching the wire
// image on little-endian IEEE hosts: 24 bytes, no implicit padding,
// f64 + u32 + u32 + u8 outcome + 7 explicit reserved bytes.
static_assert(sizeof(ConnRecord) == kWtraceRecordBytes);
static_assert(std::is_trivially_copyable_v<ConnRecord>);
static_assert(sizeof(double) == 8);
static_assert(std::numeric_limits<double>::is_iec559, "wtrace requires IEEE-754 doubles");

constexpr bool kLittleEndian = std::endian::native == std::endian::little;

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x00000100000001b3ull;

void put_le16(char* out, std::uint16_t v) noexcept {
  out[0] = static_cast<char>(v & 0xFF);
  out[1] = static_cast<char>((v >> 8) & 0xFF);
}

void put_le32(char* out, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

void put_le64(char* out, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

[[nodiscard]] std::uint16_t get_le16(const char* in) noexcept {
  const auto* p = reinterpret_cast<const unsigned char*>(in);
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

[[nodiscard]] std::uint32_t get_le32(const char* in) noexcept {
  const auto* p = reinterpret_cast<const unsigned char*>(in);
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

[[nodiscard]] std::uint64_t get_le64(const char* in) noexcept {
  std::uint64_t v = 0;
  const auto* p = reinterpret_cast<const unsigned char*>(in);
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void encode_header(char out[kWtraceHeaderBytes], std::uint64_t count,
                   std::uint64_t checksum) noexcept {
  put_le32(out + 0, kWtraceMagic);
  put_le16(out + 4, kWtraceVersion);
  put_le16(out + 6, static_cast<std::uint16_t>(kWtraceRecordBytes));
  put_le64(out + 8, count);
  put_le64(out + 16, checksum);
  put_le64(out + 24, 0);  // reserved
}

}  // namespace

std::uint64_t wtrace_checksum(const void* data, std::size_t size) noexcept {
  const char* p = static_cast<const char*>(data);
  std::uint64_t h = kFnvOffset ^ (static_cast<std::uint64_t>(size) * kFnvPrime);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    h = (h ^ get_le64(p + i)) * kFnvPrime;
  }
  if (i < size) {
    char tail[8] = {};
    std::memcpy(tail, p + i, size - i);
    h = (h ^ get_le64(tail)) * kFnvPrime;
  }
  // splitmix64 finalizer: diffuse the high bits FNV leaves weak.
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  return h ^ (h >> 31);
}

void encode_wtrace_record(const ConnRecord& record, char out[kWtraceRecordBytes]) noexcept {
  if constexpr (kLittleEndian) {
    std::memcpy(out, &record, kWtraceRecordBytes);
  } else {
    std::uint64_t ts_bits = 0;
    std::memcpy(&ts_bits, &record.timestamp, 8);
    put_le64(out + 0, ts_bits);
    put_le32(out + 8, record.source_host);
    put_le32(out + 12, record.destination.value());
    out[16] = static_cast<char>(record.outcome);
    std::memset(out + 17, 0, 7);
  }
}

ConnRecord decode_wtrace_record(const char* in) noexcept {
  ConnRecord rec;
  if constexpr (kLittleEndian) {
    std::memcpy(&rec, in, kWtraceRecordBytes);
  } else {
    const std::uint64_t ts_bits = get_le64(in + 0);
    std::memcpy(&rec.timestamp, &ts_bits, 8);
    rec.source_host = get_le32(in + 8);
    rec.destination = net::Ipv4Address(get_le32(in + 12));
    rec.outcome = static_cast<std::uint8_t>(in[16]);
  }
  return rec;
}

ConnRecord decode_wtrace_record_v1(const char* in) noexcept {
  ConnRecord rec;
  const std::uint64_t ts_bits = get_le64(in + 0);
  std::memcpy(&rec.timestamp, &ts_bits, 8);
  rec.source_host = get_le32(in + 8);
  rec.destination = net::Ipv4Address(get_le32(in + 12));
  return rec;  // v1 predates the outcome column: every connection "succeeded"
}

void write_wtrace(std::ostream& out, std::span<const ConnRecord> records) {
  // Checksum first (one pass over the in-memory records), then stream out in
  // large blocks so multi-million-record converts stay I/O bound.
  std::uint64_t checksum = 0;
  if constexpr (kLittleEndian) {
    checksum = wtrace_checksum(records.data(), records.size() * kWtraceRecordBytes);
  } else {
    std::uint64_t h = kFnvOffset ^ (static_cast<std::uint64_t>(records.size() *
                                                               kWtraceRecordBytes) *
                                    kFnvPrime);
    for (const ConnRecord& r : records) {
      char wire[kWtraceRecordBytes];
      encode_wtrace_record(r, wire);
      h = (h ^ get_le64(wire + 0)) * kFnvPrime;
      h = (h ^ get_le64(wire + 8)) * kFnvPrime;
      h = (h ^ get_le64(wire + 16)) * kFnvPrime;
    }
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    checksum = h ^ (h >> 31);
  }

  char header[kWtraceHeaderBytes];
  encode_header(header, records.size(), checksum);
  out.write(header, kWtraceHeaderBytes);
  if constexpr (kLittleEndian) {
    constexpr std::size_t kBlockRecords = 1u << 16;
    for (std::size_t i = 0; i < records.size(); i += kBlockRecords) {
      const std::size_t n = std::min(kBlockRecords, records.size() - i);
      out.write(reinterpret_cast<const char*>(records.data() + i),
                static_cast<std::streamsize>(n * kWtraceRecordBytes));
    }
  } else {
    for (const ConnRecord& r : records) {
      char wire[kWtraceRecordBytes];
      encode_wtrace_record(r, wire);
      out.write(wire, kWtraceRecordBytes);
    }
  }
  WORMS_ENSURES(out.good());
}

void write_wtrace_file(const std::string& path, std::span<const ConnRecord> records) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  WORMS_EXPECTS(out.good());
  write_wtrace(out, records);
  out.close();
  WORMS_ENSURES(out.good());
}

WtraceHeader parse_wtrace_header(std::string_view bytes) {
  if (bytes.size() < kWtraceHeaderBytes) {
    throw support::PreconditionError("wtrace header truncated: file shorter than " +
                                     std::to_string(kWtraceHeaderBytes) + " bytes");
  }
  if (get_le32(bytes.data()) != kWtraceMagic) {
    throw support::PreconditionError("not a .wtrace file (bad magic)");
  }
  const std::uint16_t version = get_le16(bytes.data() + 4);
  if (version != kWtraceVersion && version != kWtraceVersionV1) {
    throw support::PreconditionError("unsupported .wtrace version " + std::to_string(version) +
                                     " (this build reads versions " +
                                     std::to_string(kWtraceVersionV1) + " and " +
                                     std::to_string(kWtraceVersion) + ")");
  }
  const std::size_t expected_record_size =
      version == kWtraceVersionV1 ? kWtraceRecordBytesV1 : kWtraceRecordBytes;
  const std::uint16_t record_size = get_le16(bytes.data() + 6);
  if (record_size != expected_record_size) {
    throw support::PreconditionError(".wtrace record size " + std::to_string(record_size) +
                                     " differs from expected " +
                                     std::to_string(expected_record_size) + " for version " +
                                     std::to_string(version));
  }
  if (get_le64(bytes.data() + 24) != 0) {
    throw support::PreconditionError(".wtrace reserved header field is nonzero");
  }
  WtraceHeader header;
  header.record_count = get_le64(bytes.data() + 8);
  header.checksum = get_le64(bytes.data() + 16);
  header.version = version;
  header.record_size = expected_record_size;
  return header;
}

std::vector<ConnRecord> read_wtrace(std::istream& in) {
  char raw_header[kWtraceHeaderBytes];
  in.read(raw_header, kWtraceHeaderBytes);
  if (in.gcount() != static_cast<std::streamsize>(kWtraceHeaderBytes)) {
    throw support::PreconditionError("wtrace header truncated: file shorter than " +
                                     std::to_string(kWtraceHeaderBytes) + " bytes");
  }
  const WtraceHeader header =
      parse_wtrace_header(std::string_view(raw_header, kWtraceHeaderBytes));

  std::string payload(header.record_count * header.record_size, '\0');
  in.read(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (static_cast<std::size_t>(in.gcount()) != payload.size()) {
    throw support::PreconditionError(
        "wtrace payload truncated: header promises " + std::to_string(header.record_count) +
        " records but the file ends early");
  }
  if (in.peek() != std::char_traits<char>::eof()) {
    throw support::PreconditionError("trailing bytes after the last wtrace record");
  }
  if (wtrace_checksum(payload.data(), payload.size()) != header.checksum) {
    throw support::PreconditionError("wtrace checksum mismatch: the payload is corrupt");
  }

  std::vector<ConnRecord> records(header.record_count);
  if (header.record_size == kWtraceRecordBytesV1) {
    for (std::uint64_t i = 0; i < header.record_count; ++i) {
      records[i] = decode_wtrace_record_v1(payload.data() + i * kWtraceRecordBytesV1);
    }
  } else if constexpr (kLittleEndian) {
    // Empty traces are legal and an empty vector's data() may be null, which
    // memcpy must never receive even with a zero count.
    if (!payload.empty()) std::memcpy(records.data(), payload.data(), payload.size());
  } else {
    for (std::uint64_t i = 0; i < header.record_count; ++i) {
      records[i] = decode_wtrace_record(payload.data() + i * kWtraceRecordBytes);
    }
  }
  return records;
}

std::vector<ConnRecord> read_wtrace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  WORMS_EXPECTS(in.good());
  return read_wtrace(in);
}

bool wtrace_magic_matches(std::string_view prefix) noexcept {
  return prefix.size() >= 4 && get_le32(prefix.data()) == kWtraceMagic;
}

bool looks_like_wtrace_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return false;
  char magic[4];
  in.read(magic, 4);
  return in.gcount() == 4 && wtrace_magic_matches(std::string_view(magic, 4));
}

}  // namespace worms::trace
