// Synthetic LBL-CONN-7-style trace generator.
//
// The paper analyzes the LBL-CONN-7 dataset — 30 days of wide-area TCP
// connections from 1645 hosts at Lawrence Berkeley Laboratory — and uses
// exactly these statistics (§IV, Fig. 6):
//   * 97% of hosts contacted fewer than 100 distinct destinations in 30 days;
//   * only six hosts contacted more than 1000;
//   * the most active host contacted ≈ 4000 unique addresses;
//   * growth curves of the six most active hosts are roughly steady with
//     occasional bursts.
// The real trace is not redistributable here, so this generator synthesizes
// a population calibrated to those reported statistics (see DESIGN.md §2);
// every downstream computation — false-positive rates for a given M, Fig. 6's
// growth curves — runs on the same code path it would with the real data.
//
// Model per host:
//   * distinct-destination target D_h: six hand-pinned heavy hosts
//     (4000 … 1100), log-normal body for the rest (calibrated so
//     P{D < 100} ≈ 0.97), rejection-capped below 1000;
//   * first-contact times of the D_h new destinations: a uniform background
//     blended with a few bursts (matching the bursty steps in Fig. 6);
//   * revisit traffic: each destination is re-contacted Geometric-many times
//     at diurnally modulated times (revisits don't move the distinct counter
//     but exercise the policy's distinct-vs-attempt distinction).
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace worms::trace {

struct LblSynthConfig {
  std::uint32_t hosts = 1645;
  sim::SimTime duration = 30.0 * sim::kDay;
  std::uint64_t seed = 0x1b1'c077'7ULL;

  /// Distinct-destination targets for the heavy hitters (Fig. 6's six
  /// curves); must stay > 1000 to match the paper's "only six hosts above
  /// 1000 distinct destinations".
  std::vector<std::uint32_t> heavy_host_targets = {4000, 2800, 2300, 1800, 1400, 1100};

  /// Log-normal body parameters for everyone else (log-space mean/stddev).
  /// Defaults put P{D < 100} ≈ 0.97 with a median of ~13 destinations.
  double body_log_mean = 2.54;
  double body_log_sigma = 1.10;

  /// Mean number of *revisit* connections per distinct destination.
  double mean_revisits = 4.0;

  /// Fraction of connections marked as failed (timeouts, resets, dead
  /// addresses) — benign background noise for the failure-counting policy.
  /// Outcomes are a post-hoc hash of each record, not extra RNG draws, so
  /// changing this (or the default's existence) never moves any record.
  double failure_fraction = 0.02;
};

struct SynthTrace {
  std::vector<ConnRecord> records;                  ///< sorted by timestamp
  std::vector<std::uint32_t> distinct_per_host;     ///< exact D_h per host
};

/// Generates the full 30-day trace.  Deterministic in config.seed.
[[nodiscard]] SynthTrace synthesize_lbl_trace(const LblSynthConfig& config);

}  // namespace worms::trace
