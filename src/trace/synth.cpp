#include "trace/synth.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_set>

#include "stats/samplers.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace worms::trace {
namespace {

/// Diurnal modulation: office-hours traffic peaks mid-day.  Returns a weight
/// in (0, 1] for a timestamp; used to thin revisit times.
double diurnal_weight(sim::SimTime t) {
  const double hour_of_day = std::fmod(t, sim::kDay) / sim::kHour;
  // Peak around 14:00, trough around 02:00; never fully silent.
  return 0.55 + 0.45 * std::cos((hour_of_day - 14.0) / 24.0 * 2.0 * M_PI);
}

/// Draws a timestamp with the diurnal profile by rejection.
sim::SimTime diurnal_time(support::Rng& rng, sim::SimTime duration) {
  while (true) {
    const sim::SimTime t = rng.uniform() * duration;
    if (rng.uniform() < diurnal_weight(t)) return t;
  }
}

/// First-contact instants for `count` distinct destinations: a uniform
/// background plus a few tight bursts, sorted.
std::vector<sim::SimTime> first_contact_times(support::Rng& rng, std::uint32_t count,
                                              sim::SimTime duration) {
  std::vector<sim::SimTime> times;
  times.reserve(count);
  // ~25% of new destinations arrive in bursts (software updates, crawls,
  // address-book syncs) — this is what gives Fig. 6 its step-like segments.
  const std::uint32_t burst_total = count / 4;
  std::uint32_t assigned = 0;
  while (assigned < burst_total) {
    const std::uint32_t burst =
        std::min<std::uint32_t>(burst_total - assigned,
                                1 + static_cast<std::uint32_t>(rng.below(40)));
    const sim::SimTime center = diurnal_time(rng, duration);
    for (std::uint32_t i = 0; i < burst; ++i) {
      // Bursts span a few minutes.
      const sim::SimTime jitter = (rng.uniform() - 0.5) * 10.0 * sim::kMinute;
      times.push_back(std::clamp(center + jitter, 0.0, duration));
    }
    assigned += burst;
  }
  while (times.size() < count) times.push_back(diurnal_time(rng, duration));
  std::sort(times.begin(), times.end());
  return times;
}

}  // namespace

SynthTrace synthesize_lbl_trace(const LblSynthConfig& config) {
  WORMS_EXPECTS(config.hosts >= config.heavy_host_targets.size());
  WORMS_EXPECTS(config.duration > 0.0);
  WORMS_EXPECTS(config.mean_revisits >= 0.0);
  WORMS_EXPECTS(config.failure_fraction >= 0.0 && config.failure_fraction <= 1.0);

  support::Rng rng(config.seed);
  SynthTrace out;
  out.distinct_per_host.resize(config.hosts);

  // --- Assign distinct-destination targets ---
  for (std::uint32_t h = 0; h < config.hosts; ++h) {
    if (h < config.heavy_host_targets.size()) {
      out.distinct_per_host[h] = config.heavy_host_targets[h];
      continue;
    }
    // Log-normal body, resampled to stay below the heavy-hitter floor so the
    // trace has *exactly* the configured number of >1000 hosts.
    double d;
    do {
      d = stats::sample_lognormal(rng, config.body_log_mean, config.body_log_sigma);
    } while (d >= 1000.0);
    out.distinct_per_host[h] = static_cast<std::uint32_t>(std::max(1.0, std::floor(d)));
  }

  // --- Emit connections ---
  for (std::uint32_t h = 0; h < config.hosts; ++h) {
    const std::uint32_t distinct = out.distinct_per_host[h];
    const auto times = first_contact_times(rng, distinct, config.duration);

    std::unordered_set<std::uint32_t> used;
    used.reserve(distinct * 2);
    for (std::uint32_t d = 0; d < distinct; ++d) {
      // Fresh public destination address, unique within this host's history.
      std::uint32_t addr;
      do {
        addr = rng.u32();
      } while (!used.insert(addr).second);

      out.records.push_back(ConnRecord{times[d], h, net::Ipv4Address(addr)});

      // Revisits: geometric count, diurnal times after first contact.
      const auto revisits = static_cast<std::uint32_t>(
          stats::sample_geometric_trials(rng, 1.0 / (1.0 + config.mean_revisits)) - 1);
      for (std::uint32_t r = 0; r < revisits; ++r) {
        const sim::SimTime t =
            times[d] + rng.uniform() * (config.duration - times[d]);
        out.records.push_back(ConnRecord{t, h, net::Ipv4Address(addr)});
      }
    }
  }

  std::sort(out.records.begin(), out.records.end(), stream_order);

  // --- Assign connection outcomes ---
  // A pure hash of (seed, post-sort index, record fields): no RNG draws, so
  // record placement is bit-identical to a failure-free generation and every
  // pre-existing verdict golden survives the outcome column's introduction.
  if (config.failure_fraction > 0.0) {
    const std::uint64_t outcome_key = support::derive_seed(config.seed, 0xFA11u);
    for (std::size_t i = 0; i < out.records.size(); ++i) {
      ConnRecord& r = out.records[i];
      std::uint64_t ts_bits = 0;
      std::memcpy(&ts_bits, &r.timestamp, sizeof(ts_bits));
      std::uint64_t s = outcome_key ^ (static_cast<std::uint64_t>(i) * 0x9E3779B97F4A7C15ull) ^
                        ts_bits ^ (static_cast<std::uint64_t>(r.source_host) << 32) ^
                        r.destination.value();
      const double u = static_cast<double>(support::splitmix64(s) >> 11) * 0x1.0p-53;
      if (u < config.failure_fraction) r.outcome = kOutcomeFailure;
    }
  }
  return out;
}

}  // namespace worms::trace
