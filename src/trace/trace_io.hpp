// CSV serialization for connection traces.
// Format: one record per line, `timestamp,source_host,destination`, with a
// single header line.  Destinations are dotted-quad for interoperability.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/record.hpp"

namespace worms::trace {

/// Writes the header plus all records.
void write_csv(std::ostream& out, const std::vector<ConnRecord>& records);
void write_csv_file(const std::string& path, const std::vector<ConnRecord>& records);

/// Parses a full trace; throws support::PreconditionError on malformed input.
[[nodiscard]] std::vector<ConnRecord> read_csv(std::istream& in);
[[nodiscard]] std::vector<ConnRecord> read_csv_file(const std::string& path);

}  // namespace worms::trace
