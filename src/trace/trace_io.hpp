// CSV serialization for connection traces.
// Format: one record per line, `timestamp,source_host,destination,outcome`,
// with a single header line.  Destinations are dotted-quad for
// interoperability; outcome is 0 (success) or 1 (failure).  Legacy traces
// without the outcome column — three-field header and lines — still parse,
// with outcome defaulting to success.
//
// Two parsing modes share one field grammar:
//   * strict (read_csv) — throws support::PreconditionError on the first
//     malformed line; for generated traces where any damage is a bug.
//   * recovering (read_csv_recovering) — keeps every parseable record and
//     returns line-accurate diagnostics for the rest; for operational traces
//     feeding the fleet pipeline, where a weeks-long containment cycle must
//     not abort on one mangled line (the diagnostics route into the
//     pipeline's dead-letter channel).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "trace/record.hpp"

namespace worms::trace {

/// Writes the header plus all records.
void write_csv(std::ostream& out, const std::vector<ConnRecord>& records);
void write_csv_file(const std::string& path, const std::vector<ConnRecord>& records);

/// Parses a full trace; throws support::PreconditionError on malformed input.
[[nodiscard]] std::vector<ConnRecord> read_csv(std::istream& in);
[[nodiscard]] std::vector<ConnRecord> read_csv_file(const std::string& path);

/// One line the recovering parser rejected.
struct TraceParseDiagnostic {
  std::uint64_t line = 0;  ///< 1-based line number in the stream
  std::string text;        ///< the offending line, verbatim
  std::string error;       ///< which field failed and why

  friend bool operator==(const TraceParseDiagnostic&, const TraceParseDiagnostic&) = default;
};

struct RecoveredTrace {
  std::vector<ConnRecord> records;           ///< every line that parsed
  std::vector<TraceParseDiagnostic> bad_lines;  ///< every line that did not
  std::uint64_t lines_scanned = 0;           ///< total lines read (header included)
};

/// Parses what it can and reports the rest.  Only a missing/wrong header —
/// evidence the stream is not a trace at all — still throws.
[[nodiscard]] RecoveredTrace read_csv_recovering(std::istream& in);
[[nodiscard]] RecoveredTrace read_csv_recovering_file(const std::string& path);

/// The trace CSV header line (no trailing newline).
[[nodiscard]] const char* csv_trace_header() noexcept;

/// True for any header this parser accepts: the current four-column header or
/// the legacy three-column one (pre-outcome traces).
[[nodiscard]] bool is_csv_trace_header(std::string_view line) noexcept;

/// Parses one `timestamp,source_host,destination[,outcome]` line into `rec`.  Returns
/// nullptr on success, otherwise a static message naming the field that
/// failed.  The single field grammar shared by read_csv, read_csv_recovering,
/// and the streaming CsvSource, so the three cannot drift on what counts as
/// valid.
[[nodiscard]] const char* parse_csv_record_line(const std::string& line, ConnRecord& rec);

}  // namespace worms::trace
