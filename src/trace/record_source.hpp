// Streaming record sources — the pull API the fleet pipeline ingests from.
//
// PR 6 (DESIGN.md §10): the pipeline used to take a materialized
// `std::vector<ConnRecord>`, which forces the whole trace into memory and
// welds the caller to one storage format.  `RecordSource` inverts that: the
// pipeline pulls blocks (`next_batch`) from an abstract source, and the
// format — CSV text, packed `.wtrace` binary, in-memory vector, synthetic
// generator — is the source's concern.  Batches keep the virtual-dispatch
// cost at one call per few thousand records instead of one per record.
//
// Sources are single-pass forward iterators over a trace: `next_batch` fills
// a caller-owned span and returns how many records it produced; 0 means
// end-of-trace (and every later call must also return 0).  `skip(n)` advances
// without materializing — BinarySource does it in O(1) pointer arithmetic,
// which is what makes checkpoint/resume over a multi-GiB trace cheap.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "trace/synth.hpp"
#include "trace/trace_io.hpp"

namespace worms::trace {

/// Pull-based stream of ConnRecords.  Single pass, not thread-safe.
class RecordSource {
 public:
  virtual ~RecordSource() = default;

  /// Fills `out` from the front and returns the number of records written
  /// (<= out.size()).  Returns 0 exactly when the trace is exhausted.
  [[nodiscard]] virtual std::size_t next_batch(std::span<ConnRecord> out) = 0;

  /// Advances past `n` records (or to the end, whichever is first) and
  /// returns how many were skipped.  Default implementation drains through
  /// next_batch; seekable sources override with O(1) arithmetic.
  virtual std::uint64_t skip(std::uint64_t n);

  /// Total records in the trace when knowable up front (binary header,
  /// in-memory vector); nullopt for text streams.
  [[nodiscard]] virtual std::optional<std::uint64_t> size_hint() const { return std::nullopt; }
};

/// Drains `source` into a vector.  Convenience for tools and tests.
[[nodiscard]] std::vector<ConnRecord> drain(RecordSource& source);

/// A source over records the caller already holds.  Does not copy: the
/// vector (or the memory behind the span) must outlive the source.
class VectorSource final : public RecordSource {
 public:
  explicit VectorSource(std::span<const ConnRecord> records) : records_(records) {}

  [[nodiscard]] std::size_t next_batch(std::span<ConnRecord> out) override;
  std::uint64_t skip(std::uint64_t n) override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return records_.size();
  }

 private:
  std::span<const ConnRecord> records_;
  std::size_t cursor_ = 0;
};

/// Streaming CSV reader sharing read_csv's field grammar.  In strict mode a
/// malformed line throws support::PreconditionError from next_batch; in
/// recovering mode it is recorded in diagnostics() and skipped — the same
/// split as read_csv vs read_csv_recovering, line-accurate either way.
class CsvSource final : public RecordSource {
 public:
  enum class Mode { Strict, Recovering };

  /// Opens `path` and validates the header eagerly, so a bad file fails at
  /// construction (with the .wtrace-sniff error if it is a binary trace),
  /// not on the first pull.
  explicit CsvSource(const std::string& path, Mode mode = Mode::Strict);
  ~CsvSource() override;

  [[nodiscard]] std::size_t next_batch(std::span<ConnRecord> out) override;

  /// Recovering mode only: every rejected line so far, in file order.
  [[nodiscard]] const std::vector<TraceParseDiagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] std::uint64_t lines_scanned() const { return lines_scanned_; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  Mode mode_;
  std::vector<TraceParseDiagnostic> diagnostics_;
  std::uint64_t lines_scanned_ = 0;
};

/// Zero-copy `.wtrace` reader.  Maps the file (POSIX mmap, with a buffered
/// read fallback), validates the header eagerly, and serves batches by
/// memcpy from the mapping.  skip() is pointer arithmetic.
class BinarySource final : public RecordSource {
 public:
  /// `verify_checksum` costs one streaming pass over the payload at open;
  /// the hot path (repeated benchmark runs over a validated file) turns it
  /// off, operational ingest leaves it on.
  explicit BinarySource(const std::string& path, bool verify_checksum = true);
  ~BinarySource() override;

  BinarySource(const BinarySource&) = delete;
  BinarySource& operator=(const BinarySource&) = delete;

  [[nodiscard]] std::size_t next_batch(std::span<ConnRecord> out) override;
  std::uint64_t skip(std::uint64_t n) override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override { return count_; }

  /// True when the file is served from an mmap rather than a heap copy.
  [[nodiscard]] bool is_mapped() const { return mapped_; }

 private:
  const char* payload_ = nullptr;  ///< first record byte
  std::uint64_t count_ = 0;        ///< total records
  std::uint64_t cursor_ = 0;       ///< next record index
  std::size_t record_size_ = 0;    ///< wire stride from the header (16 or 24)
  bool mapped_ = false;
  void* map_base_ = nullptr;       ///< mmap base (page-aligned), if mapped
  std::size_t map_len_ = 0;
  std::string fallback_;           ///< file bytes when mmap is unavailable
};

/// Synthetic LBL-style trace as a source.  Generation is deterministic in
/// config.seed and happens once at construction (the generator is
/// whole-trace by design); the source then streams the records.
class SynthSource final : public RecordSource {
 public:
  explicit SynthSource(const LblSynthConfig& config);

  [[nodiscard]] std::size_t next_batch(std::span<ConnRecord> out) override;
  std::uint64_t skip(std::uint64_t n) override;
  [[nodiscard]] std::optional<std::uint64_t> size_hint() const override {
    return trace_.records.size();
  }

  /// The underlying generated trace (exact per-host distinct counts etc.).
  [[nodiscard]] const SynthTrace& trace() const { return trace_; }

 private:
  SynthTrace trace_;
  VectorSource inner_;
};

}  // namespace worms::trace
