// Connection-trace records — the shape of LBL-CONN-7 after the paper's
// preprocessing (it only uses source host, destination address, and time).
#pragma once

#include <cstdint>

#include "net/ipv4.hpp"
#include "sim/time.hpp"

namespace worms::trace {

struct ConnRecord {
  sim::SimTime timestamp = 0.0;  ///< seconds since trace start
  std::uint32_t source_host = 0; ///< anonymized local host index (LBL style)
  net::Ipv4Address destination;  ///< remote address

  friend bool operator==(const ConnRecord&, const ConnRecord&) = default;
};

/// Strict total order for replay streams: (timestamp, source_host,
/// destination).  Being *total* — not merely by-time — makes the sorted
/// stream canonical: sorting is idempotent even under std::sort's
/// instability, so CSV ↔ .wtrace conversion is a fixed point and golden
/// binary fixtures are byte-stable.  Reordering tied records cannot change
/// containment verdicts: tied records share the flag/removal timestamp and
/// distinct-destination counting has set semantics.
[[nodiscard]] constexpr bool stream_order(const ConnRecord& a, const ConnRecord& b) noexcept {
  if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
  if (a.source_host != b.source_host) return a.source_host < b.source_host;
  return a.destination.value() < b.destination.value();
}

}  // namespace worms::trace
