// Connection-trace records — the shape of LBL-CONN-7 after the paper's
// preprocessing (source host, destination address, time), plus the connection
// outcome the failure-counting policy consumes (a worm scanning random
// addresses mostly hits dead space, so its connections mostly fail).
#pragma once

#include <cstdint>

#include "net/ipv4.hpp"
#include "sim/time.hpp"

namespace worms::trace {

/// ConnRecord::outcome values.  Only these two are valid on the wire.
inline constexpr std::uint8_t kOutcomeSuccess = 0;
inline constexpr std::uint8_t kOutcomeFailure = 1;

struct ConnRecord {
  sim::SimTime timestamp = 0.0;  ///< seconds since trace start
  std::uint32_t source_host = 0; ///< anonymized local host index (LBL style)
  net::Ipv4Address destination;  ///< remote address
  std::uint8_t outcome = kOutcomeSuccess;  ///< kOutcomeSuccess / kOutcomeFailure
  std::uint8_t reserved[7] = {};  ///< explicit padding so the memory image has
                                  ///< no indeterminate bytes (memcpy'd to wire)

  friend bool operator==(const ConnRecord&, const ConnRecord&) = default;
};

/// Strict total order for replay streams: (timestamp, source_host,
/// destination).  Being *total* — not merely by-time — makes the sorted
/// stream canonical: sorting is idempotent even under std::sort's
/// instability, so CSV ↔ .wtrace conversion is a fixed point and golden
/// binary fixtures are byte-stable.  Reordering tied records cannot change
/// containment verdicts: tied records share the flag/removal timestamp and
/// distinct-destination counting has set semantics.
[[nodiscard]] constexpr bool stream_order(const ConnRecord& a, const ConnRecord& b) noexcept {
  if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
  if (a.source_host != b.source_host) return a.source_host < b.source_host;
  return a.destination.value() < b.destination.value();
}

}  // namespace worms::trace
