// Connection-trace records — the shape of LBL-CONN-7 after the paper's
// preprocessing (it only uses source host, destination address, and time).
#pragma once

#include <cstdint>

#include "net/ipv4.hpp"
#include "sim/time.hpp"

namespace worms::trace {

struct ConnRecord {
  sim::SimTime timestamp = 0.0;  ///< seconds since trace start
  std::uint32_t source_host = 0; ///< anonymized local host index (LBL style)
  net::Ipv4Address destination;  ///< remote address

  friend bool operator==(const ConnRecord&, const ConnRecord&) = default;
};

}  // namespace worms::trace
