// HyperLogLog cardinality estimator (Flajolet et al. 2007).
//
// The containment system keeps a distinct-destination counter per protected
// host over a weeks-long cycle; an exact hash set costs O(distinct) memory
// per host, while an HLL register array is a fixed few hundred bytes with
// ~2% error at precision 12 — the deployable implementation of the paper's
// "counter of unique IP addresses".  Accuracy is verified in
// tests/trace_hyperloglog_test.cpp and both options are exposed via
// DistinctCounter below.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace worms::trace {

class HyperLogLog {
 public:
  /// `precision` b in [4, 16]: 2^b one-byte registers; relative error
  /// ≈ 1.04 / sqrt(2^b).
  explicit HyperLogLog(int precision = 12);

  /// Adds a value (hashed internally with a 64-bit finalizer).
  void add(std::uint64_t value) noexcept;

  /// Estimated number of distinct values added, with the standard small-range
  /// (linear counting) correction.  O(1): the harmonic sum and zero-register
  /// count are maintained incrementally by add()/merge(), so the fleet
  /// pipeline can consult the estimate after every record.
  [[nodiscard]] double estimate() const noexcept;

  /// Merges another sketch of the same precision (register-wise max).
  void merge(const HyperLogLog& other);

  [[nodiscard]] int precision() const noexcept { return precision_; }
  [[nodiscard]] std::size_t register_count() const noexcept { return registers_.size(); }

  /// Raw register array — the checkpoint serialization payload.
  [[nodiscard]] const std::vector<std::uint8_t>& registers() const noexcept { return registers_; }

  /// The incrementally maintained harmonic sum and zero-register count.  They
  /// are functions of the registers only up to floating-point rounding order,
  /// so a checkpoint stores them verbatim: restoring them bit-exactly is what
  /// makes a resumed estimate sequence identical to an uninterrupted one.
  [[nodiscard]] double inverse_sum() const noexcept { return inverse_sum_; }
  [[nodiscard]] std::size_t zero_register_count() const noexcept { return zero_registers_; }

  /// Rebuilds a sketch from checkpointed state.  Validates that the register
  /// array matches the precision, that `zero_registers` recounts correctly,
  /// and that `inverse_sum` is consistent with the registers (within rounding
  /// slack) — a checksummed snapshot should never fail these, so a failure
  /// means corruption.
  [[nodiscard]] static HyperLogLog restore(int precision, std::vector<std::uint8_t> registers,
                                           double inverse_sum, std::size_t zero_registers);

  /// Sketches are equal when they would behave identically from here on:
  /// same precision and same registers.  (The derived sums are excluded —
  /// they can differ in the last ulp depending on update order.)
  friend bool operator==(const HyperLogLog& a, const HyperLogLog& b) noexcept {
    return a.precision_ == b.precision_ && a.registers_ == b.registers_;
  }

 private:
  void apply_register(std::size_t idx, std::uint8_t rank) noexcept;

  int precision_;
  std::vector<std::uint8_t> registers_;
  double inverse_sum_ = 0.0;  ///< sum of 2^-register over all registers
  std::size_t zero_registers_ = 0;
};

/// Exact distinct counter with the same interface shape; the scan-limit
/// policy and trace analyzer can use either.
class ExactDistinctCounter {
 public:
  void add(std::uint64_t value) { values_.insert(value); }
  [[nodiscard]] double estimate() const noexcept { return static_cast<double>(values_.size()); }
  [[nodiscard]] std::size_t exact() const noexcept { return values_.size(); }

 private:
  std::unordered_set<std::uint64_t> values_;
};

}  // namespace worms::trace
