#include "trace/hyperloglog.hpp"

#include <bit>
#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace worms::trace {
namespace {

std::uint64_t hash64(std::uint64_t x) noexcept {
  // SplitMix64 finalizer: a strong 64-bit mixer.
  std::uint64_t s = x;
  return support::splitmix64(s);
}

double alpha_for(std::size_t m) noexcept {
  switch (m) {
    case 16: return 0.673;
    case 32: return 0.697;
    case 64: return 0.709;
    default: return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  WORMS_EXPECTS(precision >= 4 && precision <= 16);
  registers_.assign(std::size_t{1} << precision, 0);
}

void HyperLogLog::add(std::uint64_t value) noexcept {
  const std::uint64_t h = hash64(value);
  const std::size_t idx = static_cast<std::size_t>(h >> (64 - precision_));
  const std::uint64_t rest = h << precision_;
  // Rank: position of the leftmost 1-bit in the remaining 64−b bits, 1-based;
  // an all-zero remainder gets the maximum rank.
  const int rank =
      rest == 0 ? (64 - precision_ + 1) : (std::countl_zero(rest) + 1);
  if (static_cast<std::uint8_t>(rank) > registers_[idx]) {
    registers_[idx] = static_cast<std::uint8_t>(rank);
  }
}

double HyperLogLog::estimate() const noexcept {
  const double m = static_cast<double>(registers_.size());
  double sum = 0.0;
  std::size_t zeros = 0;
  for (std::uint8_t r : registers_) {
    sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  const double raw = alpha_for(registers_.size()) * m * m / sum;
  if (raw <= 2.5 * m && zeros != 0) {
    // Small-range correction: linear counting.
    return m * std::log(m / static_cast<double>(zeros));
  }
  // With a 64-bit hash the classical large-range correction is unnecessary
  // for any cardinality we could feed it.
  return raw;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  WORMS_EXPECTS(precision_ == other.precision_);
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (other.registers_[i] > registers_[i]) registers_[i] = other.registers_[i];
  }
}

}  // namespace worms::trace
