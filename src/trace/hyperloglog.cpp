#include "trace/hyperloglog.hpp"

#include <bit>
#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace worms::trace {
namespace {

std::uint64_t hash64(std::uint64_t x) noexcept {
  // SplitMix64 finalizer: a strong 64-bit mixer.
  std::uint64_t s = x;
  return support::splitmix64(s);
}

double alpha_for(std::size_t m) noexcept {
  switch (m) {
    case 16: return 0.673;
    case 32: return 0.697;
    case 64: return 0.709;
    default: return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

}  // namespace

HyperLogLog::HyperLogLog(int precision) : precision_(precision) {
  WORMS_EXPECTS(precision >= 4 && precision <= 16);
  registers_.assign(std::size_t{1} << precision, 0);
  inverse_sum_ = static_cast<double>(registers_.size());  // every register holds 2^-0
  zero_registers_ = registers_.size();
}

void HyperLogLog::apply_register(std::size_t idx, std::uint8_t rank) noexcept {
  const std::uint8_t old = registers_[idx];
  if (rank <= old) return;
  registers_[idx] = rank;
  // Both terms are exact powers of two, so the only rounding is the final
  // accumulation — the incremental sum tracks the full recomputation to
  // within one ulp per update.
  inverse_sum_ += std::ldexp(1.0, -static_cast<int>(rank)) - std::ldexp(1.0, -static_cast<int>(old));
  if (old == 0) --zero_registers_;
}

void HyperLogLog::add(std::uint64_t value) noexcept {
  const std::uint64_t h = hash64(value);
  const std::size_t idx = static_cast<std::size_t>(h >> (64 - precision_));
  const std::uint64_t rest = h << precision_;
  // Rank: position of the leftmost 1-bit in the remaining 64−b bits, 1-based;
  // an all-zero remainder gets the maximum rank.
  const int rank =
      rest == 0 ? (64 - precision_ + 1) : (std::countl_zero(rest) + 1);
  apply_register(idx, static_cast<std::uint8_t>(rank));
}

double HyperLogLog::estimate() const noexcept {
  const double m = static_cast<double>(registers_.size());
  const double raw = alpha_for(registers_.size()) * m * m / inverse_sum_;
  if (raw <= 2.5 * m && zero_registers_ != 0) {
    // Small-range correction: linear counting.
    return m * std::log(m / static_cast<double>(zero_registers_));
  }
  // With a 64-bit hash the classical large-range correction is unnecessary
  // for any cardinality we could feed it.
  return raw;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  WORMS_EXPECTS(precision_ == other.precision_);
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    apply_register(i, other.registers_[i]);
  }
}

HyperLogLog HyperLogLog::restore(int precision, std::vector<std::uint8_t> registers,
                                 double inverse_sum, std::size_t zero_registers) {
  HyperLogLog sketch(precision);
  WORMS_EXPECTS(registers.size() == sketch.registers_.size());
  const auto max_rank = static_cast<std::uint8_t>(64 - precision + 1);
  double recomputed = 0.0;
  std::size_t zeros = 0;
  for (const std::uint8_t r : registers) {
    WORMS_EXPECTS(r <= max_rank);
    recomputed += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  WORMS_EXPECTS(zeros == zero_registers);
  // The stored sum must agree with the registers up to accumulation-order
  // rounding; anything further apart is corruption the checksum missed.
  WORMS_EXPECTS(std::abs(recomputed - inverse_sum) <=
                1e-9 * static_cast<double>(registers.size()));
  sketch.registers_ = std::move(registers);
  sketch.inverse_sum_ = inverse_sum;
  sketch.zero_registers_ = zero_registers;
  return sketch;
}

}  // namespace worms::trace
