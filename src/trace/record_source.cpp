#include "trace/record_source.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/check.hpp"
#include "trace/binary_io.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define WORMS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define WORMS_HAVE_MMAP 0
#endif

namespace worms::trace {

std::uint64_t RecordSource::skip(std::uint64_t n) {
  // Generic drain: pull and discard.  Seekable sources override.
  ConnRecord scratch[256];
  std::uint64_t skipped = 0;
  while (skipped < n) {
    const std::size_t want =
        static_cast<std::size_t>(std::min<std::uint64_t>(n - skipped, std::size(scratch)));
    const std::size_t got = next_batch(std::span<ConnRecord>(scratch, want));
    if (got == 0) break;
    skipped += got;
  }
  return skipped;
}

std::vector<ConnRecord> drain(RecordSource& source) {
  std::vector<ConnRecord> records;
  if (const auto hint = source.size_hint()) records.reserve(*hint);
  ConnRecord batch[4096];
  while (true) {
    const std::size_t got = source.next_batch(batch);
    if (got == 0) break;
    records.insert(records.end(), batch, batch + got);
  }
  return records;
}

// ---------------------------------------------------------------- VectorSource

std::size_t VectorSource::next_batch(std::span<ConnRecord> out) {
  const std::size_t n = std::min(out.size(), records_.size() - cursor_);
  std::copy_n(records_.begin() + static_cast<std::ptrdiff_t>(cursor_), n, out.begin());
  cursor_ += n;
  return n;
}

std::uint64_t VectorSource::skip(std::uint64_t n) {
  const std::uint64_t remaining = records_.size() - cursor_;
  const std::uint64_t skipped = std::min(n, remaining);
  cursor_ += static_cast<std::size_t>(skipped);
  return skipped;
}

// ------------------------------------------------------------------- CsvSource

struct CsvSource::Impl {
  std::ifstream in;
  std::string line;
  bool exhausted = false;
};

CsvSource::CsvSource(const std::string& path, Mode mode)
    : impl_(std::make_unique<Impl>()), mode_(mode) {
  impl_->in.open(path);
  WORMS_EXPECTS(impl_->in.good());
  // Header validation up front — read_csv's contract, including the "this is
  // a .wtrace file" sniff inside the shared header check.
  WORMS_EXPECTS(static_cast<bool>(std::getline(impl_->in, impl_->line)) &&
                "missing trace header");
  if (wtrace_magic_matches(impl_->line)) {
    throw support::PreconditionError(
        "input is a binary .wtrace trace, not CSV; pass it directly (wormctl "
        "auto-detects the format) or run `wormctl trace convert` first");
  }
  WORMS_EXPECTS(is_csv_trace_header(impl_->line) && "unrecognized trace header");
  lines_scanned_ = 1;
}

CsvSource::~CsvSource() = default;

std::size_t CsvSource::next_batch(std::span<ConnRecord> out) {
  if (impl_->exhausted) return 0;
  std::size_t produced = 0;
  while (produced < out.size()) {
    if (!std::getline(impl_->in, impl_->line)) {
      impl_->exhausted = true;
      break;
    }
    ++lines_scanned_;
    if (impl_->line.empty()) continue;
    ConnRecord rec;
    if (const char* error = parse_csv_record_line(impl_->line, rec)) {
      if (mode_ == Mode::Strict) {
        throw support::PreconditionError("malformed trace line " +
                                         std::to_string(lines_scanned_) + ": " + error);
      }
      diagnostics_.push_back({lines_scanned_, impl_->line, error});
      continue;
    }
    out[produced++] = rec;
  }
  return produced;
}

// ---------------------------------------------------------------- BinarySource

BinarySource::BinarySource(const std::string& path, bool verify_checksum) {
#if WORMS_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size >= 0) {
      const auto len = static_cast<std::size_t>(st.st_size);
      if (len >= kWtraceHeaderBytes) {
        void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
        if (base != MAP_FAILED) {
          ::close(fd);
          map_base_ = base;
          map_len_ = len;
          mapped_ = true;
#if defined(POSIX_MADV_SEQUENTIAL)
          ::posix_madvise(base, len, POSIX_MADV_SEQUENTIAL);
#endif
        } else {
          ::close(fd);
        }
      } else {
        ::close(fd);
        throw support::PreconditionError("wtrace header truncated: file shorter than " +
                                         std::to_string(kWtraceHeaderBytes) + " bytes");
      }
    } else {
      ::close(fd);
    }
  }
#endif
  if (!mapped_) {
    // Fallback: slurp the file.  Correctness path only (non-POSIX hosts or
    // an mmap failure); everything below is identical either way.
    std::ifstream in(path, std::ios::binary);
    WORMS_EXPECTS(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    fallback_ = std::move(buf).str();
  }

  const char* base = mapped_ ? static_cast<const char*>(map_base_) : fallback_.data();
  const std::size_t len = mapped_ ? map_len_ : fallback_.size();
  const WtraceHeader header = parse_wtrace_header(std::string_view(base, len));
  record_size_ = header.record_size;
  const std::size_t payload_bytes = static_cast<std::size_t>(header.record_count) *
                                    record_size_;
  if (len < kWtraceHeaderBytes + payload_bytes) {
    throw support::PreconditionError(
        "wtrace payload truncated: header promises " + std::to_string(header.record_count) +
        " records but the file ends early");
  }
  if (len > kWtraceHeaderBytes + payload_bytes) {
    throw support::PreconditionError("trailing bytes after the last wtrace record");
  }
  payload_ = base + kWtraceHeaderBytes;
  count_ = header.record_count;
  if (verify_checksum &&
      wtrace_checksum(payload_, payload_bytes) != header.checksum) {
    throw support::PreconditionError("wtrace checksum mismatch: the payload is corrupt");
  }
}

BinarySource::~BinarySource() {
#if WORMS_HAVE_MMAP
  if (mapped_) ::munmap(map_base_, map_len_);
#endif
}

std::size_t BinarySource::next_batch(std::span<ConnRecord> out) {
  const std::size_t n =
      static_cast<std::size_t>(std::min<std::uint64_t>(out.size(), count_ - cursor_));
  const char* src = payload_ + cursor_ * record_size_;
  if (record_size_ == kWtraceRecordBytesV1) {
    // Legacy 16-byte records: per-record decode, outcome = success.
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = decode_wtrace_record_v1(src + i * kWtraceRecordBytesV1);
    }
  } else if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out.data(), src, n * kWtraceRecordBytes);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = decode_wtrace_record(src + i * kWtraceRecordBytes);
    }
  }
  cursor_ += n;
  return n;
}

std::uint64_t BinarySource::skip(std::uint64_t n) {
  const std::uint64_t skipped = std::min(n, count_ - cursor_);
  cursor_ += skipped;
  return skipped;
}

// ----------------------------------------------------------------- SynthSource

SynthSource::SynthSource(const LblSynthConfig& config)
    : trace_(synthesize_lbl_trace(config)), inner_(trace_.records) {}

std::size_t SynthSource::next_batch(std::span<ConnRecord> out) {
  return inner_.next_batch(out);
}

std::uint64_t SynthSource::skip(std::uint64_t n) { return inner_.skip(n); }

}  // namespace worms::trace
