#include "trace/analyzer.hpp"

#include <algorithm>
#include <unordered_set>

#include "support/check.hpp"

namespace worms::trace {

TraceAnalyzer::TraceAnalyzer(std::vector<ConnRecord> records) : records_(std::move(records)) {
  std::sort(records_.begin(), records_.end(),
            [](const ConnRecord& a, const ConnRecord& b) { return a.timestamp < b.timestamp; });
  for (const ConnRecord& r : records_) {
    if (r.source_host >= host_count_) host_count_ = r.source_host + 1;
  }
}

std::vector<HostActivity> TraceAnalyzer::activity_ranking() const {
  std::vector<std::unordered_set<std::uint32_t>> seen(host_count_);
  std::vector<HostActivity> activity(host_count_);
  for (std::uint32_t h = 0; h < host_count_; ++h) activity[h].host = h;
  for (const ConnRecord& r : records_) {
    seen[r.source_host].insert(r.destination.value());
    ++activity[r.source_host].total_connections;
  }
  for (std::uint32_t h = 0; h < host_count_; ++h) {
    activity[h].distinct_destinations = static_cast<std::uint32_t>(seen[h].size());
  }
  std::sort(activity.begin(), activity.end(), [](const HostActivity& a, const HostActivity& b) {
    return a.distinct_destinations > b.distinct_destinations;
  });
  return activity;
}

double TraceAnalyzer::fraction_below(std::uint32_t threshold) const {
  const auto ranking = activity_ranking();
  std::uint32_t active = 0;
  std::uint32_t below = 0;
  for (const HostActivity& a : ranking) {
    if (a.total_connections == 0) continue;  // silent hosts aren't in the denominator
    ++active;
    if (a.distinct_destinations < threshold) ++below;
  }
  WORMS_EXPECTS(active > 0);
  return static_cast<double>(below) / static_cast<double>(active);
}

std::uint32_t TraceAnalyzer::hosts_above(std::uint32_t threshold) const {
  std::uint32_t count = 0;
  for (const HostActivity& a : activity_ranking()) {
    if (a.distinct_destinations > threshold) ++count;
  }
  return count;
}

std::vector<GrowthCurve> TraceAnalyzer::top_growth_curves(std::size_t top_k) const {
  const auto ranking = activity_ranking();
  const std::size_t k = std::min(top_k, ranking.size());

  std::vector<GrowthCurve> curves(k);
  std::vector<std::int32_t> slot_of(host_count_, -1);
  for (std::size_t i = 0; i < k; ++i) {
    curves[i].host = ranking[i].host;
    slot_of[ranking[i].host] = static_cast<std::int32_t>(i);
  }

  std::vector<std::unordered_set<std::uint32_t>> seen(k);
  for (const ConnRecord& r : records_) {
    const std::int32_t slot = slot_of[r.source_host];
    if (slot < 0) continue;
    if (seen[slot].insert(r.destination.value()).second) {
      curves[slot].increment_times.push_back(r.timestamp);
    }
  }
  return curves;
}

FalsePositiveReport TraceAnalyzer::audit_policy(
    const core::ScanCountLimitPolicy::Config& config) const {
  core::ScanCountLimitPolicy::Config cfg = config;
  cfg.counting = core::ScanCountLimitPolicy::CountingMode::ExactDistinct;
  core::ScanCountLimitPolicy policy(cfg);

  std::vector<bool> removed(host_count_, false);
  for (const ConnRecord& r : records_) {
    if (removed[r.source_host]) continue;  // host is offline being checked
    const core::ScanDecision d = policy.on_scan(r.source_host, r.timestamp, r.destination);
    if (d.action == core::ScanAction::Remove ||
        d.action == core::ScanAction::AllowAndRemove) {
      removed[r.source_host] = true;
    }
  }

  FalsePositiveReport report;
  report.scan_limit = config.scan_limit;
  report.hosts_total = host_count_;
  for (std::uint32_t h = 0; h < host_count_; ++h) {
    if (removed[h]) ++report.hosts_removed;
  }
  std::unordered_set<net::HostId> flagged(policy.flagged_hosts().begin(),
                                          policy.flagged_hosts().end());
  report.hosts_flagged = static_cast<std::uint32_t>(flagged.size());
  report.removal_fraction = host_count_ == 0
                                ? 0.0
                                : static_cast<double>(report.hosts_removed) /
                                      static_cast<double>(host_count_);
  return report;
}

}  // namespace worms::trace
