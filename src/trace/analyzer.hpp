// Trace analysis: the computations the paper performs on LBL-CONN-7 (§IV)
// plus the non-intrusiveness audit of the containment scheme — replaying a
// clean trace through the actual ScanCountLimitPolicy and counting hosts the
// policy would have flagged or removed (false positives, since the trace
// contains no worm traffic).
#pragma once

#include <cstdint>
#include <vector>

#include "core/scan_limit_policy.hpp"
#include "trace/record.hpp"

namespace worms::trace {

struct HostActivity {
  std::uint32_t host = 0;
  std::uint32_t distinct_destinations = 0;
  std::uint64_t total_connections = 0;
};

/// One host's distinct-destination growth curve: the instants at which its
/// unique-destination counter incremented (Fig. 6 plots these for the top 6).
struct GrowthCurve {
  std::uint32_t host = 0;
  std::vector<sim::SimTime> increment_times;
};

struct FalsePositiveReport {
  std::uint64_t scan_limit = 0;   ///< the M audited
  std::uint32_t hosts_total = 0;
  std::uint32_t hosts_removed = 0;  ///< hit M within a cycle → false removal
  std::uint32_t hosts_flagged = 0;  ///< crossed f·M → sent to early checking
  double removal_fraction = 0.0;
};

class TraceAnalyzer {
 public:
  /// `records` need not be sorted; the analyzer sorts a copy by time.
  explicit TraceAnalyzer(std::vector<ConnRecord> records);

  /// Exact per-host activity, sorted by descending distinct count.
  [[nodiscard]] std::vector<HostActivity> activity_ranking() const;

  /// Fraction of active hosts with fewer than `threshold` distinct
  /// destinations (the paper: 97% below 100).
  [[nodiscard]] double fraction_below(std::uint32_t threshold) const;

  /// Number of hosts with strictly more than `threshold` distinct
  /// destinations (the paper: six above 1000).
  [[nodiscard]] std::uint32_t hosts_above(std::uint32_t threshold) const;

  /// Growth curves of the `top_k` most active hosts (Fig. 6).
  [[nodiscard]] std::vector<GrowthCurve> top_growth_curves(std::size_t top_k) const;

  /// Replays the trace through a ScanCountLimitPolicy in exact-distinct mode
  /// and reports which clean hosts would have been disturbed.
  [[nodiscard]] FalsePositiveReport audit_policy(
      const core::ScanCountLimitPolicy::Config& config) const;

  [[nodiscard]] const std::vector<ConnRecord>& records() const noexcept { return records_; }

 private:
  std::vector<ConnRecord> records_;  // sorted by timestamp
  std::uint32_t host_count_ = 0;     // max host index + 1
};

}  // namespace worms::trace
