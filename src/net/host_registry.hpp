// The vulnerable-host population: V hosts with unique random addresses in an
// AddressSpace, plus O(1) reverse lookup (address → host id) for the scan
// loop.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/address_space.hpp"
#include "net/address_table.hpp"
#include "net/ipv4.hpp"
#include "support/rng.hpp"

namespace worms::net {

using HostId = std::uint32_t;
inline constexpr HostId kNoHost = AddressTable::kNotFound;

/// Optional clustering of the vulnerable population: hosts are placed
/// uniformly inside `cluster_count` randomly chosen prefixes of the given
/// length instead of uniformly over the whole universe.  This models dense
/// sites in a sparse internet — the topology that makes local-preference
/// scanning dangerous (ablation A5).
struct ClusterSpec {
  int prefix_length = 24;          ///< width of each cluster block
  std::uint32_t cluster_count = 1; ///< number of blocks
};

class HostRegistry {
 public:
  /// Assigns `count` distinct addresses in `space`: uniform over the universe
  /// by default, or uniform within random cluster blocks when `clusters` is
  /// given.  Requires count <= the candidate address pool (and in practice
  /// count << pool; assignment is by rejection, O(count) when sparse).
  HostRegistry(AddressSpace space, std::uint32_t count, support::Rng& rng,
               std::optional<ClusterSpec> clusters = std::nullopt);

  [[nodiscard]] std::uint32_t count() const noexcept {
    return static_cast<std::uint32_t>(addresses_.size());
  }
  [[nodiscard]] AddressSpace space() const noexcept { return space_; }

  [[nodiscard]] Ipv4Address address_of(HostId id) const { return addresses_.at(id); }

  /// Host id owning `addr`, or kNoHost.
  [[nodiscard]] HostId lookup(Ipv4Address addr) const noexcept { return table_.find(addr); }

  /// Vulnerability density p = count / |space|.
  [[nodiscard]] double density() const noexcept { return space_.density(count()); }

 private:
  AddressSpace space_;
  std::vector<Ipv4Address> addresses_;
  AddressTable table_;
};

}  // namespace worms::net
