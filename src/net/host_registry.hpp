// The vulnerable-host population: V hosts with unique random addresses in an
// AddressSpace, plus O(1) reverse lookup (address → host id) for the scan
// loop.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/address_space.hpp"
#include "net/address_table.hpp"
#include "net/ipv4.hpp"
#include "support/rng.hpp"

namespace worms::net {

using HostId = std::uint32_t;
inline constexpr HostId kNoHost = AddressTable::kNotFound;

/// Optional clustering of the vulnerable population: hosts are placed
/// uniformly inside `cluster_count` randomly chosen prefixes of the given
/// length instead of uniformly over the whole universe.  This models dense
/// sites in a sparse internet — the topology that makes local-preference
/// scanning dangerous (ablation A5).
struct ClusterSpec {
  int prefix_length = 24;          ///< width of each cluster block
  std::uint32_t cluster_count = 1; ///< number of blocks
};

class HostRegistry {
 public:
  /// Assigns `count` distinct addresses in `space`: uniform over the universe
  /// by default, or uniform within random cluster blocks when `clusters` is
  /// given.  Requires count <= the candidate address pool (and in practice
  /// count << pool; assignment is by rejection, O(count) when sparse).
  HostRegistry(AddressSpace space, std::uint32_t count, support::Rng& rng,
               std::optional<ClusterSpec> clusters = std::nullopt);

  /// Identity-addressed registry for graph topologies: host k owns address k,
  /// so node ids and addresses coincide.  No RNG draws, no table — lookup is
  /// a bounds check.  Requires count <= |space|.
  [[nodiscard]] static HostRegistry identity(AddressSpace space, std::uint32_t count);

  [[nodiscard]] std::uint32_t count() const noexcept {
    return identity_count_ != 0 ? identity_count_
                                : static_cast<std::uint32_t>(addresses_.size());
  }
  [[nodiscard]] AddressSpace space() const noexcept { return space_; }

  [[nodiscard]] Ipv4Address address_of(HostId id) const {
    if (identity_count_ != 0) {
      WORMS_EXPECTS(id < identity_count_);
      return Ipv4Address(id);
    }
    return addresses_.at(id);
  }

  /// Host id owning `addr`, or kNoHost.
  [[nodiscard]] HostId lookup(Ipv4Address addr) const noexcept {
    if (identity_count_ != 0) return addr.value() < identity_count_ ? addr.value() : kNoHost;
    return table_.find(addr);
  }

  /// Vulnerability density p = count / |space|.
  [[nodiscard]] double density() const noexcept { return space_.density(count()); }

 private:
  explicit HostRegistry(AddressSpace space) : space_(space), table_(0) {}

  AddressSpace space_;
  std::vector<Ipv4Address> addresses_;
  AddressTable table_;
  std::uint32_t identity_count_ = 0;  ///< nonzero selects identity addressing
};

}  // namespace worms::net
