#include "net/host_registry.hpp"

#include "support/check.hpp"

namespace worms::net {

HostRegistry HostRegistry::identity(AddressSpace space, std::uint32_t count) {
  WORMS_EXPECTS(count >= 1);
  WORMS_EXPECTS(static_cast<std::uint64_t>(count) <= space.size());
  HostRegistry out(space);
  out.identity_count_ = count;
  return out;
}

HostRegistry::HostRegistry(AddressSpace space, std::uint32_t count, support::Rng& rng,
                           std::optional<ClusterSpec> clusters)
    : space_(space), table_(count) {
  addresses_.reserve(count);

  if (!clusters) {
    WORMS_EXPECTS(static_cast<std::uint64_t>(count) <= space.size());
    // Rejection sampling keeps the address distribution exactly uniform over
    // distinct tuples.  Populations are sparse (p << 1), so retries are rare.
    while (addresses_.size() < count) {
      const Ipv4Address candidate = space_.sample(rng);
      if (table_.insert(candidate, static_cast<std::uint32_t>(addresses_.size()))) {
        addresses_.push_back(candidate);
      }
    }
    return;
  }

  WORMS_EXPECTS(clusters->cluster_count >= 1);
  WORMS_EXPECTS(clusters->prefix_length >= 32 - space.bits() &&
                clusters->prefix_length <= 32);
  const std::uint64_t block_size = 1ULL << (32 - clusters->prefix_length);
  WORMS_EXPECTS(static_cast<std::uint64_t>(clusters->cluster_count) * block_size <=
                space.size());
  WORMS_EXPECTS(count <= clusters->cluster_count * block_size);

  // Pick distinct cluster bases by rejection.
  const std::uint32_t block_mask =
      clusters->prefix_length == 0 ? 0u
                                   : ~std::uint32_t{0} << (32 - clusters->prefix_length);
  AddressTable bases(clusters->cluster_count);
  std::vector<std::uint32_t> cluster_bases;
  cluster_bases.reserve(clusters->cluster_count);
  while (cluster_bases.size() < clusters->cluster_count) {
    const std::uint32_t base = space_.sample(rng).value() & block_mask;
    if (bases.insert(Ipv4Address(base), static_cast<std::uint32_t>(cluster_bases.size()))) {
      cluster_bases.push_back(base);
    }
  }

  // Hosts: uniform cluster choice, uniform offset within the block.
  while (addresses_.size() < count) {
    const std::uint32_t base =
        cluster_bases[static_cast<std::size_t>(rng.below(cluster_bases.size()))];
    const auto offset = static_cast<std::uint32_t>(rng.below(block_size));
    const Ipv4Address candidate(base | offset);
    if (table_.insert(candidate, static_cast<std::uint32_t>(addresses_.size()))) {
      addresses_.push_back(candidate);
    }
  }
}

}  // namespace worms::net
