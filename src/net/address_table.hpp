// Open-addressing hash table mapping Ipv4Address → host id.
//
// This sits on the innermost loop of the scan-level simulator (hundreds of
// millions of lookups per experiment), so it is a purpose-built robin-hood
// table rather than std::unordered_map: flat storage, power-of-two capacity,
// bounded probe lengths, no per-node allocation.
#pragma once

#include <cstdint>
#include <vector>

#include "net/ipv4.hpp"
#include "support/check.hpp"

namespace worms::net {

class AddressTable {
 public:
  static constexpr std::uint32_t kNotFound = ~std::uint32_t{0};

  /// `expected_entries` sizes the table once; inserts beyond 60% load grow it
  /// (8× per step — rehash amortization dominates insert cost, see grow()).
  explicit AddressTable(std::size_t expected_entries = 16);

  /// Inserts addr → id.  Returns false (and leaves the table unchanged) if
  /// the address is already present.  `id` must not equal kNotFound.
  bool insert(Ipv4Address addr, std::uint32_t id);

  /// Host id for addr, or kNotFound.
  [[nodiscard]] std::uint32_t find(Ipv4Address addr) const noexcept;

  [[nodiscard]] bool contains(Ipv4Address addr) const noexcept {
    return find(addr) != kNotFound;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  /// Bytes of one open-addressing slot, from the real layout — footprint
  /// gauges derive from this instead of hardcoding a width that could drift.
  [[nodiscard]] static constexpr std::size_t slot_bytes() noexcept { return sizeof(Slot); }

  /// Bytes of slot storage currently allocated (capacity × slot size).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return slots_.size() * sizeof(Slot);
  }

  /// Visits every stored (address, id) pair in slot order — the serialization
  /// hook for checkpointing per-host distinct-destination sets.  Slot order is
  /// deterministic for a given insertion history; consumers that need a
  /// canonical order must sort.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& slot : slots_) {
      if (slot.id != kNotFound) fn(Ipv4Address(slot.addr), slot.id);
    }
  }

 private:
  struct Slot {
    std::uint32_t addr = 0;
    std::uint32_t id = kNotFound;  // kNotFound marks an empty slot
  };

  [[nodiscard]] std::size_t index_of(std::uint32_t addr) const noexcept {
    // Fibonacci hashing spreads sequential addresses well.
    const std::uint64_t h = static_cast<std::uint64_t>(addr) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h >> shift_) & (slots_.size() - 1);
  }

  [[nodiscard]] std::size_t probe_distance(std::size_t slot, std::uint32_t addr) const noexcept {
    return (slot + slots_.size() - index_of(addr)) & (slots_.size() - 1);
  }

  void grow();

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  unsigned shift_ = 0;
};

}  // namespace worms::net
