// IPv4 address and CIDR prefix value types.
//
// The simulators work over a configurable-width address space (see
// address_space.hpp) so tests can shrink the universe; `Ipv4Address` is the
// strong type used everywhere an address crosses an interface boundary.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace worms::net {

/// A 32-bit IPv4 address.  Strongly typed so host ids, counters, and
/// addresses cannot be mixed up silently.
class Ipv4Address {
 public:
  constexpr Ipv4Address() noexcept = default;
  explicit constexpr Ipv4Address(std::uint32_t value) noexcept : value_(value) {}

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }

  /// Dotted-quad representation, e.g. "192.168.0.1".
  [[nodiscard]] std::string to_string() const;

  /// Parses dotted-quad text; returns nullopt on any syntax error.
  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view text);

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix, e.g. 10.0.0.0/8.
class Prefix {
 public:
  /// `length` in [0, 32].  The base address is masked down to the prefix, so
  /// Prefix(1.2.3.4/16) normalizes to 1.2.0.0/16.
  Prefix(Ipv4Address base, int length);

  [[nodiscard]] Ipv4Address base() const noexcept { return base_; }
  [[nodiscard]] int length() const noexcept { return length_; }

  /// Number of addresses covered (2^(32−length)).
  [[nodiscard]] std::uint64_t size() const noexcept { return 1ULL << (32 - length_); }

  [[nodiscard]] bool contains(Ipv4Address addr) const noexcept {
    return (addr.value() & mask_) == base_.value();
  }

  /// The enclosing prefix of the given length around an address (e.g. the /16
  /// of a scanning host, for local-preference scanning).
  [[nodiscard]] static Prefix enclosing(Ipv4Address addr, int length) {
    return Prefix(addr, length);
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Prefix&, const Prefix&) = default;

 private:
  Ipv4Address base_;
  int length_;
  std::uint32_t mask_;
};

}  // namespace worms::net
