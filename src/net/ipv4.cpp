#include "net/ipv4.hpp"

#include <charconv>

#include "support/check.hpp"

namespace worms::net {

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int shift = 24; shift >= 0; shift -= 8) {
    out += std::to_string((value_ >> shift) & 0xFFu);
    if (shift != 0) out += '.';
  }
  return out;
}

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  const char* ptr = text.data();
  const char* const end = text.data() + text.size();
  for (int octet = 0; octet < 4; ++octet) {
    unsigned int part = 0;
    const auto [next, ec] = std::from_chars(ptr, end, part);
    if (ec != std::errc() || part > 255 || next == ptr) return std::nullopt;
    // Reject leading zeros like "01" (ambiguous octal notation).
    if (next - ptr > 1 && *ptr == '0') return std::nullopt;
    value = (value << 8) | part;
    ptr = next;
    if (octet < 3) {
      if (ptr == end || *ptr != '.') return std::nullopt;
      ++ptr;
    }
  }
  if (ptr != end) return std::nullopt;
  return Ipv4Address(value);
}

Prefix::Prefix(Ipv4Address base, int length) : length_(length) {
  WORMS_EXPECTS(length >= 0 && length <= 32);
  mask_ = length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  base_ = Ipv4Address(base.value() & mask_);
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace worms::net
