#include "net/address_table.hpp"

#include <bit>
#include <utility>

namespace worms::net {
namespace {

std::size_t table_capacity_for(std::size_t expected) {
  // Target load factor <= 0.5 at the expected size, minimum 16 slots.
  const std::size_t want = expected < 8 ? 16 : expected * 2;
  return std::bit_ceil(want);
}

}  // namespace

AddressTable::AddressTable(std::size_t expected_entries) {
  const std::size_t cap = table_capacity_for(expected_entries);
  slots_.assign(cap, Slot{});
  shift_ = 64 - static_cast<unsigned>(std::countr_zero(cap));
}

bool AddressTable::insert(Ipv4Address address, std::uint32_t id) {
  WORMS_EXPECTS(id != kNotFound);
  if (size_ + 1 > slots_.size() * 60 / 100) grow();

  std::uint32_t addr = address.value();
  std::size_t slot = index_of(addr);
  std::size_t dist = 0;
  while (true) {
    Slot& s = slots_[slot];
    if (s.id == kNotFound) {
      s.addr = addr;
      s.id = id;
      ++size_;
      return true;
    }
    if (s.addr == addr) return false;  // duplicate key
    // Robin hood: steal the slot from a "richer" (closer-to-home) entry.
    const std::size_t existing_dist = probe_distance(slot, s.addr);
    if (existing_dist < dist) {
      std::swap(s.addr, addr);
      std::swap(s.id, id);
      dist = existing_dist;
    }
    slot = (slot + 1) & (slots_.size() - 1);
    ++dist;
  }
}

std::uint32_t AddressTable::find(Ipv4Address address) const noexcept {
  const std::uint32_t addr = address.value();
  std::size_t slot = index_of(addr);
  std::size_t dist = 0;
  while (true) {
    const Slot& s = slots_[slot];
    if (s.id == kNotFound) return kNotFound;
    if (s.addr == addr) return s.id;
    // Robin-hood invariant: once we'd have displaced this entry, the key
    // cannot be further down the probe chain.
    if (probe_distance(slot, s.addr) < dist) return kNotFound;
    slot = (slot + 1) & (slots_.size() - 1);
    ++dist;
  }
}

void AddressTable::grow() {
  std::vector<Slot> old = std::move(slots_);
  // Growing 8× (not 2×) cuts the total rehash work per inserted key to a
  // fraction: rehashing — not probing — dominates insert cost for tables
  // that grow from the 16-slot default, and those sit on the fleet
  // pipeline's per-record path (one ExactCounter per host).  Paired with
  // the 60% growth trigger this keeps robin-hood displacement chains short
  // through a table's whole life at a bounded-slack memory cost.
  const std::size_t cap = old.size() * 8;
  slots_.assign(cap, Slot{});
  shift_ = 64 - static_cast<unsigned>(std::countr_zero(cap));
  size_ = 0;
  for (const Slot& s : old) {
    if (s.id != kNotFound) insert(Ipv4Address(s.addr), s.id);
  }
}

}  // namespace worms::net
