// The scanned address universe.
//
// The paper's worms scan the full 2^32 IPv4 space; unit tests and some
// ablations shrink the universe (e.g. 2^20 addresses) to raise the hit
// probability without changing any code path.  Width w means addresses are
// the w low bits — i.e. the universe is the prefix 0.0.0.0/(32−w).
#pragma once

#include <cstdint>

#include "net/ipv4.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace worms::net {

class AddressSpace {
 public:
  /// `bits` in [1, 32]; the universe is {0, ..., 2^bits − 1}.
  explicit constexpr AddressSpace(int bits = 32) : bits_(bits) {
    WORMS_EXPECTS(bits >= 1 && bits <= 32);
  }

  [[nodiscard]] constexpr int bits() const noexcept { return bits_; }

  [[nodiscard]] constexpr std::uint64_t size() const noexcept { return 1ULL << bits_; }

  [[nodiscard]] constexpr bool contains(Ipv4Address a) const noexcept {
    return bits_ == 32 || (a.value() >> bits_) == 0;
  }

  /// Uniform random address in the universe.
  [[nodiscard]] Ipv4Address sample(support::Rng& rng) const noexcept {
    const std::uint32_t raw = rng.u32();
    return Ipv4Address(bits_ == 32 ? raw : raw & ((std::uint32_t{1} << bits_) - 1));
  }

  /// Density of a population of `count` hosts in this universe — the paper's
  /// vulnerability density p = V / 2^32.
  [[nodiscard]] constexpr double density(std::uint64_t count) const noexcept {
    return static_cast<double>(count) / static_cast<double>(size());
  }

  friend constexpr bool operator==(AddressSpace, AddressSpace) = default;

 private:
  int bits_;
};

}  // namespace worms::net
