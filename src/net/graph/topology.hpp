// Immutable CSR adjacency for graph-structured address spaces.
//
// The paper's branching-process model is the complete-graph special case of
// epidemic spread on a topology (Draief/Ganesh/Massoulié): who a worm *can*
// infect is an adjacency structure, not always the whole universe.  This
// class is the million-node-scale representation the topology-aware worms
// and the spectral analysis share: 32-bit compact node ids, one offsets
// array (n+1) plus one targets array (2·undirected-edges), O(1) degree and
// neighbor-span access, neighbors sorted ascending so membership tests are
// O(log d).  Instances are immutable after Builder::build() and safe to
// share read-only across Monte Carlo worker threads.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace worms::net {

/// Compact graph node id.  Distinct from HostId only in name: the worm layer
/// maps node k of a topology to vulnerable host k (identity), so the two are
/// interchangeable there.
using NodeId = std::uint32_t;

class GraphTopology {
 public:
  class Builder;

  GraphTopology() = default;

  [[nodiscard]] std::uint32_t node_count() const noexcept {
    return offsets_.empty() ? 0 : static_cast<std::uint32_t>(offsets_.size() - 1);
  }

  /// Directed edge slots (twice the undirected edge count).
  [[nodiscard]] std::uint64_t edge_count() const noexcept { return targets_.size(); }

  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbors of `v`, sorted ascending.  The span aliases internal storage
  /// and stays valid for the topology's lifetime.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
  }

  /// O(log degree(u)) adjacency test.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  [[nodiscard]] std::uint32_t max_degree() const noexcept { return max_degree_; }

  /// Mean directed degree = edge_count / node_count (0 for the empty graph).
  [[nodiscard]] double mean_degree() const noexcept {
    return node_count() == 0
               ? 0.0
               : static_cast<double>(edge_count()) / static_cast<double>(node_count());
  }

  // ---- subnet annotation (local-preference scanning) ----
  //
  // Every node belongs to exactly one subnet; an unannotated graph is one
  // subnet 0.  The worm layer's LocalSubnet strategy prefers neighbors in
  // the scanning host's own subnet, the graph analogue of /prefix scanning.

  [[nodiscard]] std::uint32_t subnet_count() const noexcept { return subnet_count_; }

  [[nodiscard]] std::uint32_t subnet_of(NodeId v) const noexcept {
    return subnets_.empty() ? 0 : subnets_[v];
  }

  /// Heap bytes of the CSR arrays (capacity is trimmed at build time).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return offsets_.size() * sizeof(std::uint32_t) + targets_.size() * sizeof(NodeId) +
           subnets_.size() * sizeof(std::uint32_t);
  }

 private:
  std::vector<std::uint32_t> offsets_;  // size node_count + 1
  std::vector<NodeId> targets_;         // size edge_count, sorted per node
  std::vector<std::uint32_t> subnets_;  // empty (all subnet 0) or size node_count
  std::uint32_t subnet_count_ = 1;
  std::uint32_t max_degree_ = 0;
};

/// Accumulates undirected edges, then builds the CSR in O(n + m) by counting
/// sort.  Self-loops are rejected at add_edge; duplicate edges are collapsed
/// at build.  Node/edge ids are 32-bit by design — a topology needing more
/// than 2^32 − 1 edge slots is out of scope.
class GraphTopology::Builder {
 public:
  explicit Builder(std::uint32_t nodes);

  /// Adds the undirected edge {u, v}; u == v throws.
  void add_edge(NodeId u, NodeId v);

  [[nodiscard]] std::uint64_t pending_edges() const noexcept { return edges_.size(); }

  /// Annotates every node with a subnet id in [0, subnet_count);
  /// `subnet_of.size()` must equal the node count.
  void set_subnets(std::vector<std::uint32_t> subnet_of, std::uint32_t subnet_count);

  /// Consumes the builder.  Deduplicates, sorts each neighbor list
  /// ascending, and freezes the CSR arrays.
  [[nodiscard]] GraphTopology build() &&;

 private:
  std::uint32_t nodes_;
  std::vector<std::pair<NodeId, NodeId>> edges_;  // normalized (min, max)
  std::vector<std::uint32_t> subnets_;
  std::uint32_t subnet_count_ = 1;
};

}  // namespace worms::net
