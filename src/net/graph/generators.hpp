// Deterministic seeded graph generators for the topology workloads.
//
// Four families, one per regime the spectral-threshold figures compare:
//   * Erdős–Rényi G(n, p)      — the homogeneous baseline, ρ(A) ≈ mean degree;
//   * Barabási–Albert          — scale-free preferential attachment, heavy
//                                degree tail, ρ(A) ≫ mean degree at the same
//                                edge budget (the "why scale-free networks
//                                are fragile" case);
//   * Watts–Strogatz           — small-world ring rewiring, near-regular but
//                                short paths;
//   * complete graph K_n       — the paper's degenerate case: every host can
//                                reach every host, recovering Proposition 1's
//                                M ≤ 1/p threshold.
//
// Every generator is a pure function of its arguments: equal (shape, seed)
// pairs produce bit-identical topologies on every platform, which the
// determinism suite pins.  Generation is single-threaded O(n + m); share the
// built topology read-only across Monte Carlo threads instead of
// regenerating per run.
//
// Subnet annotation: each generator partitions nodes into contiguous blocks
// of `subnet_size` ids (default 256, the /24 analogue; the last block may be
// short).  The worm layer's LocalSubnet strategy scans within these blocks.
#pragma once

#include <cstdint>

#include "net/graph/topology.hpp"

namespace worms::net {

inline constexpr std::uint32_t kDefaultSubnetSize = 256;

/// G(n, p) with p chosen so the expected undirected degree is `avg_degree`
/// (p = avg_degree / (n − 1), must land in [0, 1]).  Uses Batagelj–Brandes
/// geometric edge skipping: O(n + m), never O(n²).
[[nodiscard]] GraphTopology make_erdos_renyi(std::uint32_t nodes, double avg_degree,
                                             std::uint64_t seed,
                                             std::uint32_t subnet_size = kDefaultSubnetSize);

/// Preferential attachment: an (m+1)-clique seed, then each new node attaches
/// `edges_per_node` distinct edges to existing nodes sampled proportional to
/// degree (repeated-endpoint list method).  Mean degree → 2·edges_per_node.
[[nodiscard]] GraphTopology make_barabasi_albert(std::uint32_t nodes,
                                                 std::uint32_t edges_per_node,
                                                 std::uint64_t seed,
                                                 std::uint32_t subnet_size = kDefaultSubnetSize);

/// Ring lattice where every node links its `even_degree`/2 nearest neighbors
/// on each side, then each lattice edge is rewired with probability
/// `rewire_probability` to a uniform non-duplicate endpoint.
[[nodiscard]] GraphTopology make_watts_strogatz(std::uint32_t nodes, std::uint32_t even_degree,
                                                double rewire_probability, std::uint64_t seed,
                                                std::uint32_t subnet_size = kDefaultSubnetSize);

/// K_n reference topology (one subnet).  Materializes n(n−1) edge slots, so
/// the node count is capped at 8192 — the degenerate-case validation runs at
/// small n; the paper-scale complete-graph workload stays on the flat
/// AddressSpace path, which needs no adjacency at all.
[[nodiscard]] GraphTopology make_complete(std::uint32_t nodes);

/// Contiguous-block subnet assignment shared by the generators: node v is in
/// subnet v / subnet_size.
[[nodiscard]] std::vector<std::uint32_t> block_subnets(std::uint32_t nodes,
                                                       std::uint32_t subnet_size,
                                                       std::uint32_t& subnet_count_out);

}  // namespace worms::net
