#include "net/graph/generators.hpp"

#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace worms::net {

std::vector<std::uint32_t> block_subnets(std::uint32_t nodes, std::uint32_t subnet_size,
                                         std::uint32_t& subnet_count_out) {
  WORMS_EXPECTS(subnet_size >= 1);
  std::vector<std::uint32_t> subnet_of(nodes);
  for (std::uint32_t v = 0; v < nodes; ++v) subnet_of[v] = v / subnet_size;
  subnet_count_out = (nodes + subnet_size - 1) / subnet_size;
  return subnet_of;
}

namespace {

void annotate_blocks(GraphTopology::Builder& builder, std::uint32_t nodes,
                     std::uint32_t subnet_size) {
  std::uint32_t count = 0;
  auto subnet_of = block_subnets(nodes, subnet_size, count);
  builder.set_subnets(std::move(subnet_of), count);
}

}  // namespace

GraphTopology make_erdos_renyi(std::uint32_t nodes, double avg_degree, std::uint64_t seed,
                               std::uint32_t subnet_size) {
  WORMS_EXPECTS(nodes >= 2);
  const double p = avg_degree / static_cast<double>(nodes - 1);
  WORMS_EXPECTS(p >= 0.0 && p <= 1.0);

  GraphTopology::Builder builder(nodes);
  support::Rng rng(seed);
  if (p > 0.0) {
    // Batagelj–Brandes: walk the strictly-lower-triangular pair sequence and
    // jump Geometric(p) slots between successive edges — O(m) draws total.
    const double log1mp = std::log1p(-p);
    std::uint64_t v = 1;
    std::int64_t w = -1;
    while (v < nodes) {
      const std::uint64_t skip =
          p >= 1.0 ? 0
                   : static_cast<std::uint64_t>(std::log(rng.uniform_pos()) / log1mp);
      w += 1 + static_cast<std::int64_t>(skip);
      while (w >= static_cast<std::int64_t>(v) && v < nodes) {
        w -= static_cast<std::int64_t>(v);
        ++v;
      }
      if (v < nodes) {
        builder.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(w));
      }
    }
  }
  annotate_blocks(builder, nodes, subnet_size);
  return std::move(builder).build();
}

GraphTopology make_barabasi_albert(std::uint32_t nodes, std::uint32_t edges_per_node,
                                   std::uint64_t seed, std::uint32_t subnet_size) {
  WORMS_EXPECTS(edges_per_node >= 1);
  WORMS_EXPECTS(nodes > edges_per_node);

  GraphTopology::Builder builder(nodes);
  support::Rng rng(seed);
  // `endpoints` holds each edge endpoint once, so uniform sampling from it is
  // degree-proportional sampling — preferential attachment without a tree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(nodes) * edges_per_node);

  // Seed clique on nodes 0..m so every early node has nonzero degree.
  const std::uint32_t m = edges_per_node;
  for (std::uint32_t u = 0; u <= m; ++u) {
    for (std::uint32_t v = u + 1; v <= m; ++v) {
      builder.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::vector<NodeId> picked(m);
  for (std::uint32_t v = m + 1; v < nodes; ++v) {
    // m distinct degree-proportional targets, by rejection: duplicates are
    // rare (m ≪ attached mass) so the expected retry count is O(1).
    for (std::uint32_t k = 0; k < m; ++k) {
      NodeId target = 0;
      bool fresh = false;
      while (!fresh) {
        target = endpoints[static_cast<std::size_t>(rng.below(endpoints.size()))];
        fresh = true;
        for (std::uint32_t j = 0; j < k; ++j) {
          if (picked[j] == target) {
            fresh = false;
            break;
          }
        }
      }
      picked[k] = target;
    }
    // Append after all m draws so a node never attaches to itself via an
    // endpoint recorded earlier in the same step.
    for (std::uint32_t k = 0; k < m; ++k) {
      builder.add_edge(v, picked[k]);
      endpoints.push_back(v);
      endpoints.push_back(picked[k]);
    }
  }
  annotate_blocks(builder, nodes, subnet_size);
  return std::move(builder).build();
}

GraphTopology make_watts_strogatz(std::uint32_t nodes, std::uint32_t even_degree,
                                  double rewire_probability, std::uint64_t seed,
                                  std::uint32_t subnet_size) {
  WORMS_EXPECTS(even_degree >= 2 && even_degree % 2 == 0);
  WORMS_EXPECTS(nodes > even_degree);
  WORMS_EXPECTS(rewire_probability >= 0.0 && rewire_probability <= 1.0);

  GraphTopology::Builder builder(nodes);
  support::Rng rng(seed);
  const std::uint32_t half = even_degree / 2;
  for (std::uint32_t v = 0; v < nodes; ++v) {
    for (std::uint32_t j = 1; j <= half; ++j) {
      const NodeId ring_target = static_cast<NodeId>((v + j) % nodes);
      if (rng.bernoulli(rewire_probability)) {
        // Rewire the far endpoint to a uniform non-self node.  The builder
        // collapses the (rare) duplicate edges this can produce, slightly
        // shaving mean degree — the standard small-world construction.
        NodeId target = v;
        while (target == v) target = static_cast<NodeId>(rng.below(nodes));
        builder.add_edge(v, target);
      } else {
        builder.add_edge(v, ring_target);
      }
    }
  }
  annotate_blocks(builder, nodes, subnet_size);
  return std::move(builder).build();
}

GraphTopology make_complete(std::uint32_t nodes) {
  WORMS_EXPECTS(nodes >= 2);
  WORMS_EXPECTS(nodes <= 8192 && "K_n is materialized; use the flat path beyond 8192 nodes");
  GraphTopology::Builder builder(nodes);
  for (std::uint32_t u = 0; u < nodes; ++u) {
    for (std::uint32_t v = u + 1; v < nodes; ++v) builder.add_edge(u, v);
  }
  builder.set_subnets(std::vector<std::uint32_t>(nodes, 0), 1);
  return std::move(builder).build();
}

}  // namespace worms::net
