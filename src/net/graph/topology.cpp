#include "net/graph/topology.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace worms::net {

bool GraphTopology::has_edge(NodeId u, NodeId v) const noexcept {
  const auto span = neighbors(u);
  return std::binary_search(span.begin(), span.end(), v);
}

GraphTopology::Builder::Builder(std::uint32_t nodes) : nodes_(nodes) {
  WORMS_EXPECTS(nodes >= 1);
}

void GraphTopology::Builder::add_edge(NodeId u, NodeId v) {
  WORMS_EXPECTS(u != v);
  WORMS_EXPECTS(u < nodes_ && v < nodes_);
  edges_.emplace_back(std::min(u, v), std::max(u, v));
}

void GraphTopology::Builder::set_subnets(std::vector<std::uint32_t> subnet_of,
                                         std::uint32_t subnet_count) {
  WORMS_EXPECTS(subnet_of.size() == nodes_);
  WORMS_EXPECTS(subnet_count >= 1);
  for (const std::uint32_t s : subnet_of) WORMS_EXPECTS(s < subnet_count);
  subnets_ = std::move(subnet_of);
  subnet_count_ = subnet_count;
}

GraphTopology GraphTopology::Builder::build() && {
  // Normalize-sort-unique collapses duplicates, then two counting passes
  // fill the CSR.  Everything is O(n + m log m); the sort dominates but
  // stays comfortably fast at tens of millions of edges.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  const std::uint64_t slots = 2 * static_cast<std::uint64_t>(edges_.size());
  WORMS_EXPECTS(slots <= UINT32_MAX && "edge slots must fit 32-bit indices");

  GraphTopology g;
  g.offsets_.assign(static_cast<std::size_t>(nodes_) + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  for (std::uint32_t v = 0; v < nodes_; ++v) {
    g.offsets_[v + 1] += g.offsets_[v];
    g.max_degree_ = std::max(g.max_degree_, g.offsets_[v + 1] - g.offsets_[v]);
  }
  g.targets_.resize(static_cast<std::size_t>(slots));
  std::vector<std::uint32_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  // Edges are sorted by (min, max), so each node's slots fill ascending for
  // the min endpoint; a final per-node sort fixes the max-endpoint entries.
  for (const auto& [u, v] : edges_) {
    g.targets_[cursor[u]++] = v;
    g.targets_[cursor[v]++] = u;
  }
  for (std::uint32_t v = 0; v < nodes_; ++v) {
    std::sort(g.targets_.begin() + g.offsets_[v], g.targets_.begin() + g.offsets_[v + 1]);
  }
  g.subnets_ = std::move(subnets_);
  g.subnet_count_ = subnet_count_;
  g.offsets_.shrink_to_fit();
  g.targets_.shrink_to_fit();
  g.subnets_.shrink_to_fit();
  return g;
}

}  // namespace worms::net
