// Flat open-addressing host table for shard workers (DESIGN.md §10).
//
// Each shard maps `source_host -> HostState` on the per-record hot path.
// std::unordered_map resolves that with a hash, a bucket pointer chase, and
// a node dereference — three dependent loads to scattered heap nodes, which
// is exactly the access pattern a worm-speed stream cannot hide.  This table
// is a Fibonacci-hashed, linear-probed slot array of {key, entry index}
// pairs over a dense entry vector:
//
//   * a lookup is one multiply + shift and a short scan of one or two
//     adjacent 8-byte slots — a single cache line in the common case;
//   * `prefetch(key)` lets the worker issue the slot-line load several
//     records ahead of `process()`, hiding the miss behind useful work;
//   * iteration walks the dense entry vector in insertion order, which is
//     deterministic given the record stream — so snapshots and verdict
//     merges see a reproducible order (unordered_map promised nothing).
//
// The interface is the subset of unordered_map the pipeline uses
// (try_emplace / range-for over pair entries / size), so the swap is
// mechanical.  Entry references are invalidated by growth: use the returned
// pointer within one call, as the pipeline does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace worms::fleet {

template <typename V>
class HostTable {
 public:
  using Entry = std::pair<std::uint32_t, V>;
  using iterator = typename std::vector<Entry>::iterator;
  using const_iterator = typename std::vector<Entry>::const_iterator;

  HostTable() { rebuild(kInitialSlots); }

  /// Returns {entry, inserted}; the entry pointer is valid until the next
  /// insertion.  A new entry's value is value-initialized.
  std::pair<Entry*, bool> try_emplace(std::uint32_t key) {
    std::size_t i = bucket(key);
    for (;;) {
      Slot& s = slots_[i];
      if (s.index == kEmpty) {
        // Grow at 1/2 load: slots are 8 bytes, so doubling them is cheap
        // insurance that probe chains stay within a cache line or two.
        if ((entries_.size() + 1) * 2 > slots_.size()) {
          rebuild(slots_.size() * 2);
          return try_emplace(key);
        }
        s.key = key;
        s.index = static_cast<std::uint32_t>(entries_.size());
        entries_.emplace_back(key, V());
        return {&entries_.back(), true};
      }
      if (s.key == key) return {&entries_[s.index], false};
      i = (i + 1) & mask_;
    }
  }

  /// Pointer to the value for `key`, or nullptr.  Valid until growth.
  [[nodiscard]] const V* find(std::uint32_t key) const noexcept {
    std::size_t i = bucket(key);
    for (;;) {
      const Slot& s = slots_[i];
      if (s.index == kEmpty) return nullptr;
      if (s.key == key) return &entries_[s.index].second;
      i = (i + 1) & mask_;
    }
  }

  /// Issues a prefetch for `key`'s slot cache line.  Call a handful of
  /// records ahead of the matching try_emplace to hide the table miss.
  void prefetch(std::uint32_t key) const noexcept {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[bucket(key)]);
#endif
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  // Iteration in insertion order (deterministic for a given stream).
  [[nodiscard]] iterator begin() noexcept { return entries_.begin(); }
  [[nodiscard]] iterator end() noexcept { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return entries_.end(); }

 private:
  struct Slot {
    std::uint32_t key = 0;
    std::uint32_t index = kEmpty;
  };

  static constexpr std::uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr std::size_t kInitialSlots = 16;

  [[nodiscard]] std::size_t bucket(std::uint32_t key) const noexcept {
    // Fibonacci hashing: the golden-ratio multiply diffuses sequential host
    // ids across the table; the top bits index it.
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull) >> shift_);
  }

  void rebuild(std::size_t slot_count) {
    slots_.assign(slot_count, Slot{});
    mask_ = slot_count - 1;
    shift_ = 64;
    for (std::size_t n = slot_count; n > 1; n >>= 1) --shift_;
    for (std::uint32_t e = 0; e < entries_.size(); ++e) {
      std::size_t i = bucket(entries_[e].first);
      while (slots_[i].index != kEmpty) i = (i + 1) & mask_;
      slots_[i] = {entries_[e].first, e};
    }
  }

  std::vector<Slot> slots_;
  std::vector<Entry> entries_;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
};

}  // namespace worms::fleet
