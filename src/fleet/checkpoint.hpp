// Snapshot serialization substrate for the fleet containment pipeline.
//
// A checkpoint is a single versioned, checksummed binary blob: fixed-width
// little-endian fields appended by BinaryWriter, consumed by BinaryReader
// (which throws on any truncation), wrapped by a magic/version header and an
// FNV-1a-64 trailer so a torn write or bit rot is detected before any state
// is trusted.  Files are written atomically (temp file + rename) so a crash
// *during* checkpointing leaves the previous snapshot intact — the pipeline
// can always fall back to the last complete one.
//
// The counter codec serializes either DistinctCounter backend with a type
// tag, including the HLL's incrementally maintained float state verbatim —
// that verbatim restore is what makes "checkpoint + replay of the suffix"
// bit-identical to an uninterrupted run even for the approximate backend.
//
// The snapshot *assembly* (which hosts, which verdicts, stream position)
// lives with the pipeline itself; this header is the format layer.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "fleet/distinct_counter.hpp"

namespace worms::fleet {

/// 'WFS1' — worms fleet snapshot.  Version 2 added the shared-pool section,
/// the compact counter tag, and the failure-policy fields; older snapshots
/// are rejected (re-run from the trace rather than risk misdecoding state).
inline constexpr std::uint32_t kSnapshotMagic = 0x31534657u;
inline constexpr std::uint16_t kSnapshotVersion = 2;

/// Appends fixed-width little-endian fields to a growing buffer.
class BinaryWriter {
 public:
  void put_u8(std::uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void put_u16(std::uint16_t v) { put_le(v); }
  void put_u32(std::uint32_t v) { put_le(v); }
  void put_u64(std::uint64_t v) { put_le(v); }
  void put_f64(double v);
  void put_bytes(const void* data, std::size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }

  [[nodiscard]] const std::string& buffer() const noexcept { return buffer_; }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buffer_.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
    }
  }

  std::string buffer_;
};

/// Consumes what BinaryWriter produced; throws support::PreconditionError on
/// truncation so corrupt snapshots fail loudly rather than misparse.
class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint16_t get_u16() { return get_le<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t get_u32() { return get_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t get_u64() { return get_le<std::uint64_t>(); }
  [[nodiscard]] double get_f64();
  void get_bytes(void* out, std::size_t size);

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - offset_; }

 private:
  void require(std::size_t bytes) const;

  template <typename T>
  T get_le() {
    require(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<unsigned char>(data_[offset_ + i])) << (8 * i);
    }
    offset_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  std::size_t offset_ = 0;
};

/// FNV-1a 64-bit over the payload — the snapshot trailer.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view data) noexcept;

/// Writes `payload` + its checksum trailer atomically (temp file + rename).
void write_snapshot_file(const std::string& path, std::string_view payload);

/// Reads a snapshot file, validates the checksum trailer, and returns the
/// payload.  Throws support::PreconditionError on missing file, truncation,
/// or checksum mismatch.
[[nodiscard]] std::string read_snapshot_file(const std::string& path);

/// Serializes one counter (backend tag + payload).  A compact counter's
/// payload is only its per-host offsets (epoch, reported tally, anchor) —
/// the registers live in the pool section of the pipeline snapshot.
void encode_counter(BinaryWriter& out, const DistinctCounter& counter);

/// Bank binding for decoding compact counters: which pool to attach to and
/// which host the counter belongs to (the slice is re-derived from the host
/// id).  Exact/HLL tags ignore it; a compact tag with no context is rejected.
struct CompactDecodeContext {
  SharedSketchPool* pool = nullptr;
  std::uint32_t host = 0;
};

/// Rebuilds a counter from its serialized form.
[[nodiscard]] std::unique_ptr<DistinctCounter> decode_counter(
    BinaryReader& in, const CompactDecodeContext* compact = nullptr);

}  // namespace worms::fleet
