// Worm-traffic injector: overlays random-scanning worm records on a clean
// connection trace so the streaming pipeline can be exercised with ground
// truth.  The clean records play the role of LBL-CONN-7 background traffic;
// the injected hosts behave like the paper's uniform scanners — each emits
// Poisson-timed connection attempts to destinations drawn uniformly from the
// 2^32 address space (which essentially never repeat, so every scan is a new
// distinct destination from the counter's point of view).
//
// The injector does not model propagation — it produces the *traffic* of an
// already-infected set, which is exactly what a containment point observes.
// End-to-end detection dynamics under spread live in worm::ScanLevelSimulation;
// here the question is "given infected hosts on the wire, does the pipeline
// flag and remove them, and how fast?"
#pragma once

#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace worms::fleet {

struct WormInjectConfig {
  std::uint32_t infected_hosts = 10;      ///< I0: number of hosts emitting scans
  double scan_rate = 6.0;                 ///< scans/second per infected host
  std::uint64_t scans_per_host = 10'000;  ///< stop a host after this many scans (0 = unlimited)
  sim::SimTime start = 0.0;               ///< infection time of every host
  sim::SimTime end = 0.0;                 ///< 0 ⇒ last base-record timestamp
  std::uint64_t seed = 0xF1EE7;
  /// Population to draw infected host ids from; 0 ⇒ max base host index + 1.
  /// Ids are sampled without replacement, so infected hosts carry their
  /// normal background traffic too — the realistic (hardest) case.
  std::uint32_t host_count = 0;
  /// Fraction of worm scans that fail (uniform random scanning mostly hits
  /// dead address space — the stealth-worm signal the failure policy keys
  /// on).  Derived by hashing each scan's fields, never extra RNG draws, so
  /// scan placement is independent of this knob.
  double failure_fraction = 0.9;
};

struct InjectedTrace {
  std::vector<trace::ConnRecord> records;     ///< base + worm, sorted by time
  std::vector<std::uint32_t> infected_hosts;  ///< ground truth, ascending
  std::uint64_t worm_records = 0;             ///< how many records were injected
};

/// Deterministic in (base, config).  The base records need not be sorted;
/// the result always is (stable on timestamp ties, worm records after base).
[[nodiscard]] InjectedTrace inject_worm_scans(std::vector<trace::ConnRecord> base,
                                              const WormInjectConfig& config);

}  // namespace worms::fleet
