#include "fleet/dead_letter.hpp"

#include <utility>

#include "obs/registry.hpp"
#include "support/check.hpp"

namespace worms::fleet {

const char* to_string(DeadLetterReason reason) noexcept {
  switch (reason) {
    case DeadLetterReason::Malformed: return "malformed";
    case DeadLetterReason::OutOfOrder: return "out-of-order";
    case DeadLetterReason::Duplicate: return "duplicate";
  }
  return "unknown";
}

DeadLetterChannel::DeadLetterChannel(const Config& config) : config_(config) {
  WORMS_EXPECTS(config.capacity >= 1);
  if (config_.metrics != nullptr) {
    for (const DeadLetterReason reason :
         {DeadLetterReason::Malformed, DeadLetterReason::OutOfOrder,
          DeadLetterReason::Duplicate}) {
      reason_counters_[static_cast<std::size_t>(reason)] = &config_.metrics->counter(
          std::string("fleet_dead_letters_total{reason=\"") + to_string(reason) + "\"}");
    }
    overflow_counter_ = &config_.metrics->counter("fleet_dead_letters_overflow_total");
  }
  if (!config_.spill_path.empty()) {
    spill_.open(config_.spill_path, std::ios::out | std::ios::trunc);
    WORMS_EXPECTS(spill_.good() && "cannot open dead-letter spill file");
    spill_ << "stream_index,reason,timestamp,source_host,destination,detail\n";
  }
}

void DeadLetterChannel::report(DeadLetterEntry entry) {
  std::lock_guard lock(mutex_);
  switch (entry.reason) {
    case DeadLetterReason::Malformed: ++stats_.malformed; break;
    case DeadLetterReason::OutOfOrder: ++stats_.out_of_order; break;
    case DeadLetterReason::Duplicate: ++stats_.duplicate; break;
  }
  if (obs::Counter* c = reason_counters_[static_cast<std::size_t>(entry.reason)]) c->add();
  if (spill_.is_open()) {
    spill_ << entry.stream_index << ',' << to_string(entry.reason) << ','
           << entry.record.timestamp << ',' << entry.record.source_host << ','
           << entry.record.destination.to_string() << ',' << entry.detail << '\n';
  }
  retained_.push_back(std::move(entry));
  if (retained_.size() > config_.capacity) {
    retained_.pop_front();
    ++stats_.overflow_dropped;
    if (overflow_counter_ != nullptr) overflow_counter_->add();
  }
}

void DeadLetterChannel::preload(const DeadLetterStats& stats) {
  std::lock_guard lock(mutex_);
  // preload happens once, right after construction, so the counter deltas
  // below are the full restored baselines.
  WORMS_EXPECTS(stats_ == DeadLetterStats{} && "preload on a channel already in use");
  stats_ = stats;
  if (reason_counters_[0] != nullptr) {
    reason_counters_[static_cast<std::size_t>(DeadLetterReason::Malformed)]->add(stats.malformed);
    reason_counters_[static_cast<std::size_t>(DeadLetterReason::OutOfOrder)]
        ->add(stats.out_of_order);
    reason_counters_[static_cast<std::size_t>(DeadLetterReason::Duplicate)]->add(stats.duplicate);
  }
  if (overflow_counter_ != nullptr) overflow_counter_->add(stats.overflow_dropped);
}

DeadLetterStats DeadLetterChannel::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::vector<DeadLetterEntry> DeadLetterChannel::entries() const {
  std::lock_guard lock(mutex_);
  return {retained_.begin(), retained_.end()};
}

}  // namespace worms::fleet
