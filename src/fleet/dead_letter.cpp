#include "fleet/dead_letter.hpp"

#include <utility>

#include "obs/registry.hpp"
#include "support/check.hpp"

namespace worms::fleet {

const char* to_string(DeadLetterReason reason) noexcept {
  switch (reason) {
    case DeadLetterReason::Malformed: return "malformed";
    case DeadLetterReason::OutOfOrder: return "out-of-order";
    case DeadLetterReason::Duplicate: return "duplicate";
    case DeadLetterReason::FrameBadMagic: return "frame-bad-magic";
    case DeadLetterReason::FrameTruncated: return "frame-truncated";
    case DeadLetterReason::FrameChecksum: return "frame-checksum";
    case DeadLetterReason::FrameOversized: return "frame-oversized";
  }
  return "unknown";
}

namespace {

/// The stats field backing each reason, so report/preload stay in lockstep
/// with the enum.
std::uint64_t& stats_field(DeadLetterStats& stats, DeadLetterReason reason) {
  switch (reason) {
    case DeadLetterReason::Malformed: return stats.malformed;
    case DeadLetterReason::OutOfOrder: return stats.out_of_order;
    case DeadLetterReason::Duplicate: return stats.duplicate;
    case DeadLetterReason::FrameBadMagic: return stats.frame_bad_magic;
    case DeadLetterReason::FrameTruncated: return stats.frame_truncated;
    case DeadLetterReason::FrameChecksum: return stats.frame_checksum;
    case DeadLetterReason::FrameOversized: return stats.frame_oversized;
  }
  return stats.malformed;  // unreachable
}

constexpr std::array<DeadLetterReason, kDeadLetterReasonCount> kAllReasons = {
    DeadLetterReason::Malformed,      DeadLetterReason::OutOfOrder,
    DeadLetterReason::Duplicate,      DeadLetterReason::FrameBadMagic,
    DeadLetterReason::FrameTruncated, DeadLetterReason::FrameChecksum,
    DeadLetterReason::FrameOversized,
};

}  // namespace

DeadLetterChannel::DeadLetterChannel(const Config& config) : config_(config) {
  WORMS_EXPECTS(config.capacity >= 1);
  if (config_.metrics != nullptr) {
    for (const DeadLetterReason reason : kAllReasons) {
      reason_counters_[static_cast<std::size_t>(reason)] = &config_.metrics->counter(
          std::string("fleet_dead_letters_total{reason=\"") + to_string(reason) + "\"}");
    }
    overflow_counter_ = &config_.metrics->counter("fleet_dead_letters_overflow_total");
  }
  if (!config_.spill_path.empty()) {
    spill_.open(config_.spill_path, std::ios::out | std::ios::trunc);
    WORMS_EXPECTS(spill_.good() && "cannot open dead-letter spill file");
    spill_ << "stream_index,reason,timestamp,source_host,destination,detail\n";
  }
}

void DeadLetterChannel::report(DeadLetterEntry entry) {
  std::lock_guard lock(mutex_);
  ++stats_field(stats_, entry.reason);
  if (obs::Counter* c = reason_counters_[static_cast<std::size_t>(entry.reason)]) c->add();
  if (spill_.is_open()) {
    spill_ << entry.stream_index << ',' << to_string(entry.reason) << ','
           << entry.record.timestamp << ',' << entry.record.source_host << ','
           << entry.record.destination.to_string() << ',' << entry.detail << '\n';
  }
  retained_.push_back(std::move(entry));
  if (retained_.size() > config_.capacity) {
    retained_.pop_front();
    ++stats_.overflow_dropped;
    if (overflow_counter_ != nullptr) overflow_counter_->add();
  }
}

void DeadLetterChannel::preload(const DeadLetterStats& stats) {
  std::lock_guard lock(mutex_);
  // preload happens once, right after construction, so the counter deltas
  // below are the full restored baselines.
  WORMS_EXPECTS(stats_ == DeadLetterStats{} && "preload on a channel already in use");
  stats_ = stats;
  if (reason_counters_[0] != nullptr) {
    DeadLetterStats baseline = stats;
    for (const DeadLetterReason reason : kAllReasons) {
      reason_counters_[static_cast<std::size_t>(reason)]->add(stats_field(baseline, reason));
    }
  }
  if (overflow_counter_ != nullptr) overflow_counter_->add(stats.overflow_dropped);
}

DeadLetterStats DeadLetterChannel::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::vector<DeadLetterEntry> DeadLetterChannel::entries() const {
  std::lock_guard lock(mutex_);
  return {retained_.begin(), retained_.end()};
}

}  // namespace worms::fleet
