#include "fleet/dead_letter.hpp"

#include <utility>

#include "support/check.hpp"

namespace worms::fleet {

const char* to_string(DeadLetterReason reason) noexcept {
  switch (reason) {
    case DeadLetterReason::Malformed: return "malformed";
    case DeadLetterReason::OutOfOrder: return "out-of-order";
    case DeadLetterReason::Duplicate: return "duplicate";
  }
  return "unknown";
}

DeadLetterChannel::DeadLetterChannel(const Config& config) : config_(config) {
  WORMS_EXPECTS(config.capacity >= 1);
  if (!config_.spill_path.empty()) {
    spill_.open(config_.spill_path, std::ios::out | std::ios::trunc);
    WORMS_EXPECTS(spill_.good() && "cannot open dead-letter spill file");
    spill_ << "stream_index,reason,timestamp,source_host,destination,detail\n";
  }
}

void DeadLetterChannel::report(DeadLetterEntry entry) {
  std::lock_guard lock(mutex_);
  switch (entry.reason) {
    case DeadLetterReason::Malformed: ++stats_.malformed; break;
    case DeadLetterReason::OutOfOrder: ++stats_.out_of_order; break;
    case DeadLetterReason::Duplicate: ++stats_.duplicate; break;
  }
  if (spill_.is_open()) {
    spill_ << entry.stream_index << ',' << to_string(entry.reason) << ','
           << entry.record.timestamp << ',' << entry.record.source_host << ','
           << entry.record.destination.to_string() << ',' << entry.detail << '\n';
  }
  retained_.push_back(std::move(entry));
  if (retained_.size() > config_.capacity) {
    retained_.pop_front();
    ++stats_.overflow_dropped;
  }
}

void DeadLetterChannel::preload(const DeadLetterStats& stats) {
  std::lock_guard lock(mutex_);
  stats_ = stats;
}

DeadLetterStats DeadLetterChannel::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::vector<DeadLetterEntry> DeadLetterChannel::entries() const {
  std::lock_guard lock(mutex_);
  return {retained_.begin(), retained_.end()};
}

}  // namespace worms::fleet
