#include "fleet/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <mutex>
#include <span>
#include <thread>
#include <unordered_set>
#include <utility>

#include "fleet/bounded_queue.hpp"
#include "fleet/checkpoint.hpp"
#include "fleet/host_table.hpp"
#include "fleet/spsc_ring.hpp"
#include "trace/record_source.hpp"
#include "obs/event_log.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace worms::fleet {

namespace {

using Batch = std::vector<trace::ConnRecord>;

constexpr auto kWorkerPollInterval = std::chrono::milliseconds(20);

/// Per-host streaming state owned by exactly one shard worker.
struct HostState {
  std::unique_ptr<DistinctCounter> counter;
  /// Mirrors counter->backend() without the virtual call — the batch loop
  /// branches on this to reach ExactCounter::add/count through static,
  /// inlinable dispatch.  Kept in sync at every site that assigns `counter`
  /// (insert, degrade, snapshot restore); it cannot be derived from the
  /// shard's effective backend because a resharded restore may place HLL
  /// hosts under a shard whose effective backend is still Exact.
  CounterBackend counter_backend = CounterBackend::Exact;
  std::uint64_t cycle = 0;
  bool cycle_flagged = false;  ///< crossed f·M in the current cycle
  std::uint64_t cycle_failures = 0;  ///< failed connections in the current cycle
  sim::SimTime last_time = 0.0;
  std::uint32_t last_destination = 0;
  bool has_prev = false;  ///< last_time/last_destination hold a processed record
  HostVerdict verdict;
};

/// Quiesce barrier: one gate shared by a control task pushed to every shard
/// queue.  FIFO order means a worker arriving at the gate has fully processed
/// every batch fed before the quiesce began.
struct Gate {
  explicit Gate(unsigned n) : remaining(n) {}

  void arrive() {
    {
      std::lock_guard lock(mutex);
      --remaining;
    }
    cv.notify_all();
  }

  [[nodiscard]] bool wait_for(std::chrono::milliseconds timeout) {
    std::unique_lock lock(mutex);
    return cv.wait_for(lock, timeout, [&] { return remaining == 0; });
  }

  std::mutex mutex;
  std::condition_variable cv;
  unsigned remaining;
};

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* to_string(ShardHealth health) noexcept {
  switch (health) {
    case ShardHealth::Healthy: return "healthy";
    case ShardHealth::Degraded: return "degraded";
    case ShardHealth::Shedding: return "shedding";
  }
  return "unknown";
}

const HostVerdict* ContainmentVerdicts::find(std::uint32_t host) const noexcept {
  const auto it = std::lower_bound(
      hosts.begin(), hosts.end(), host,
      [](const HostVerdict& v, std::uint32_t h) { return v.host < h; });
  return (it != hosts.end() && it->host == host) ? &*it : nullptr;
}

std::vector<std::uint32_t> ContainmentVerdicts::removed_hosts() const {
  std::vector<std::uint32_t> out;
  for (const HostVerdict& v : hosts) {
    if (v.removed) out.push_back(v.host);
  }
  return out;
}

/// What travels over a shard queue: a record batch (with per-record stream
/// indices for line-accurate dead-letter diagnostics), or a control task — a
/// quiesce gate or a degrade-to-HLL order from the overload monitor.
struct ContainmentPipeline::ShardTask {
  Batch records;
  std::vector<std::uint64_t> indices;  ///< parallel to records: feed order
  std::shared_ptr<Gate> gate;
  /// One-rung backend degrade order (exact→HLL→compact) from the overload
  /// monitor.
  bool degrade_backend = false;
  /// Hosts to administratively remove (fleet alert gossip) — a control task,
  /// FIFO-ordered against record batches like the gate and degrade tasks.
  std::vector<std::uint32_t> pre_contain;
};

/// Overload ladder state for one shard, owned by the ingest thread.
struct ContainmentPipeline::Monitor {
  ShardHealth health = ShardHealth::Healthy;
  unsigned hot = 0;       ///< consecutive samples >= degrade watermark
  unsigned critical = 0;  ///< consecutive samples >= shed watermark
  unsigned cool = 0;      ///< consecutive samples below both
};

/// One shard: a queue, the per-host states of `host % shards == index`, and a
/// single Attempts-mode ScanCountLimitPolicy those states drive.  Host state
/// is touched only by the shard's worker thread (and by the ingest thread
/// after a quiesce gate or the final join — both synchronization points);
/// `removed` is the one shared structure, guarded by its mutex, so shedding
/// can consult it from the ingest side.
struct ContainmentPipeline::Shard {
  /// Transport-erasing facade over the shard queue.  One virtual call per
  /// *batch* (not per record), so the A/B cost is noise; both transports
  /// share the BoundedMpscQueue contract, so the fault-tolerance
  /// choreography never knows which one is underneath.
  class Channel {
   public:
    Channel(Transport transport, std::size_t capacity) {
      if (transport == Transport::Spsc) {
        impl_ = std::make_unique<Impl<SpscRing<ShardTask>>>(capacity);
      } else {
        impl_ = std::make_unique<Impl<BoundedMpscQueue<ShardTask>>>(capacity);
      }
    }

    [[nodiscard]] bool try_push(ShardTask& task) { return impl_->try_push(task); }
    [[nodiscard]] std::optional<ShardTask> pop_wait_for(std::chrono::milliseconds timeout) {
      return impl_->pop_wait_for(timeout);
    }
    void close() { impl_->close(); }
    [[nodiscard]] bool drained() const { return impl_->drained(); }
    [[nodiscard]] std::size_t size() const { return impl_->size(); }
    [[nodiscard]] std::size_t high_water() const { return impl_->high_water(); }
    [[nodiscard]] std::size_t capacity() const { return impl_->capacity(); }

   private:
    struct Base {
      virtual ~Base() = default;
      virtual bool try_push(ShardTask& task) = 0;
      virtual std::optional<ShardTask> pop_wait_for(std::chrono::milliseconds timeout) = 0;
      virtual void close() = 0;
      virtual bool drained() const = 0;
      virtual std::size_t size() const = 0;
      virtual std::size_t high_water() const = 0;
      virtual std::size_t capacity() const = 0;
    };
    template <typename Q>
    struct Impl final : Base {
      explicit Impl(std::size_t capacity) : q(capacity) {}
      bool try_push(ShardTask& task) override { return q.try_push(task); }
      std::optional<ShardTask> pop_wait_for(std::chrono::milliseconds timeout) override {
        return q.pop_wait_for(timeout);
      }
      void close() override { q.close(); }
      bool drained() const override { return q.drained(); }
      std::size_t size() const override { return q.size(); }
      std::size_t high_water() const override { return q.high_water(); }
      std::size_t capacity() const override { return q.capacity(); }
      mutable Q q;
    };
    std::unique_ptr<Base> impl_;
  };

  explicit Shard(const PipelineOptions& config)
      : queue(config.transport, config.queue_capacity),
        policy({.scan_limit = config.policy.scan_limit,
                .cycle_length = config.policy.cycle_length,
                .check_fraction = config.policy.check_fraction,
                .counting = core::ScanCountLimitPolicy::CountingMode::Attempts}),
        effective_backend(config.backend),
        published_backend(static_cast<std::uint8_t>(config.backend)),
        hll_precision(config.hll_precision),
        flag_threshold(config.policy.check_fraction < 1.0
                           ? config.policy.check_fraction *
                                 static_cast<double>(config.policy.scan_limit)
                           : 0.0),
        flagging_enabled(config.policy.check_fraction < 1.0),
        cycle_length(config.policy.cycle_length),
        pool(config.compact),
        failure_budget(config.failure_budget) {}

  void consume(DeadLetterChannel& dead_letters) {
    for (;;) {
      // Fault-injected death, checked between tasks so a "crash" never tears
      // a batch.  kill_fired persists across respawns: the kill fires once.
      if (kill_requested && !kill_fired && batches_done >= kill_after) {
        kill_fired = true;
        if (trace != nullptr) trace->instant("worker_killed", static_cast<double>(index));
        if (events != nullptr) {
          events->emit(obs::EventType::FaultClauseFired, last_stream_index,
                       static_cast<std::uint64_t>(obs::FaultKind::WorkerKill), index);
        }
        dead.store(true, std::memory_order_release);
        return;
      }
      auto task = queue.pop_wait_for(kWorkerPollInterval);
      if (!task) {
        if (queue.drained()) return;
        // Timeout: re-check faults, keep waiting.  Wall-clock traces record
        // the starved poll; synthetic ones stay silent (scheduling noise).
        if (trace != nullptr && trace_wall) trace->instant("queue_pop_wait");
        continue;
      }
      if (task->gate) {
        task->gate->arrive();
        continue;
      }
      if (task->degrade_backend) {
        degrade();
        continue;
      }
      if (!task->pre_contain.empty()) {
        for (const std::uint32_t host : task->pre_contain) apply_pre_containment(host);
        continue;
      }
      if (!error) {
        WORMS_TRACE_SPAN(task->records.empty() ? nullptr : trace, "shard_batch");
        const support::Stopwatch batch_watch;
        try {
          // Prefetch the host-table slot a few records ahead: for big fleets
          // the table lookup is the batch loop's dominant cache miss, and the
          // lookahead hides it behind the current record's policy work.  When
          // the table still fits in L2 the prefetch is pure per-record
          // overhead (hash + issue slot), so it only switches on once the
          // table outgrows cache residency.
          constexpr std::size_t kPrefetchAhead = 8;
          constexpr std::size_t kPrefetchMinSlots = std::size_t{1} << 15;  // 256 KiB of slots
          const std::size_t n = task->records.size();
          if (hosts.capacity() >= kPrefetchMinSlots) {
            for (std::size_t i = 0; i < n; ++i) {
              if (i + kPrefetchAhead < n) {
                hosts.prefetch(task->records[i + kPrefetchAhead].source_host);
              }
              process(task->records[i], task->indices[i], dead_letters);
            }
          } else {
            for (std::size_t i = 0; i < n; ++i) {
              process(task->records[i], task->indices[i], dead_letters);
            }
          }
        } catch (...) {
          error = std::current_exception();
          // keep draining so the producer never blocks on a full queue
        }
        if (obs != nullptr) {
          if (!task->records.empty()) {
            obs->batch_seconds->record(batch_watch.elapsed_seconds(), index);
          }
          // Suppression counts flush at batch granularity: one atomic add per
          // batch instead of one per suppressed record (DESIGN.md §8 budget).
          if (const std::uint64_t delta = suppressed - suppressed_flushed) {
            obs->suppressed->add(delta, index);
            suppressed_flushed = suppressed;
          }
        }
      }
      ++batches_done;
      for (PendingStall& stall : stalls) {
        if (!stall.fired && batches_done >= stall.after) {
          stall.fired = true;
          if (trace != nullptr) trace->instant("fault_stall", stall.seconds);
          if (events != nullptr) {
            events->emit(obs::EventType::FaultClauseFired, last_stream_index,
                         static_cast<std::uint64_t>(obs::FaultKind::WorkerStall), index);
          }
          std::this_thread::sleep_for(std::chrono::duration<double>(stall.seconds));
        }
      }
      // Each fault-plan degrade clause walks exactly one rung of the backend
      // ladder; the fired flag keeps a passed threshold from re-firing every
      // batch (two clauses = two rungs, never more).
      for (PendingDegrade& d : degrade_after) {
        if (!d.fired && batches_done >= d.after) {
          d.fired = true;
          degrade();
        }
      }
    }
  }

  void process(const trace::ConnRecord& r, std::uint64_t stream_index,
               DeadLetterChannel& dead_letters) {
    last_stream_index = stream_index;
    auto [it, inserted] = hosts.try_emplace(r.source_host);
    HostState& h = it->second;
    if (inserted) {
      h.counter = make_counter(r.source_host);
      h.counter_backend = effective_backend;
      h.verdict.host = r.source_host;
      h.cycle = cycle_index(r.timestamp);
    }
    if (h.verdict.removed) {
      ++suppressed;  // host is offline for heavy-duty checking; obs flushes per batch
      return;
    }
    if (h.has_prev) {
      if (r.timestamp < h.last_time) {
        if (trace != nullptr) {
          trace->instant("dead_letter_out_of_order", static_cast<double>(stream_index));
        }
        dead_letters.report({DeadLetterReason::OutOfOrder, r, stream_index,
                             "timestamp regressed for host " + std::to_string(r.source_host)});
        return;
      }
      if (r.timestamp == h.last_time && r.destination.value() == h.last_destination) {
        if (trace != nullptr) {
          trace->instant("dead_letter_duplicate", static_cast<double>(stream_index));
        }
        dead_letters.report({DeadLetterReason::Duplicate, r, stream_index,
                             "repeats host " + std::to_string(r.source_host) +
                                 "'s previous record"});
        return;
      }
    }
    h.last_time = r.timestamp;
    h.last_destination = r.destination.value();
    h.has_prev = true;
    ++h.verdict.records_seen;

    const std::uint64_t cycle = cycle_index(r.timestamp);
    if (cycle != h.cycle) {
      // Containment-cycle boundary: both the backend state and the policy's
      // internal count restart (the policy resets itself on its next
      // on_scan; the counter is ours to reset).
      h.counter->reset();
      h.cycle = cycle;
      h.cycle_flagged = false;
      h.cycle_failures = 0;
    }

    // Connection-failure tally (always), enforcement (only when budgeted)
    // after the distinct-destination work below so a record that exhausts
    // both budgets reports the scan-limit removal — the paper's primary
    // mechanism — not the failure one.
    if (r.outcome == trace::kOutcomeFailure) {
      ++h.verdict.failures_seen;
      ++h.cycle_failures;
      if (h.cycle_failures > h.verdict.peak_failures) {
        h.verdict.peak_failures = h.cycle_failures;
      }
    }

    // Static dispatch for the exact backend (the default): add() and count()
    // inline down to one open-addressing probe instead of two virtual calls
    // per record — worth ~10% of the shard worker's per-record budget.
    std::uint32_t new_distinct;
    std::uint64_t tally;
    if (h.counter_backend == CounterBackend::Exact) {
      auto& exact = static_cast<ExactCounter&>(*h.counter);
      new_distinct = exact.add(r.destination.value());
      tally = exact.count();
    } else {
      new_distinct = h.counter->add(r.destination.value());
      tally = h.counter->count();
    }
    if (tally > h.verdict.peak_distinct) {
      h.verdict.peak_distinct = tally;
    }
    // Forward one counted scan per new distinct destination; the policy
    // applies the budget M and the flag threshold exactly as it would have
    // in ExactDistinct mode.
    for (std::uint32_t i = 0; i < new_distinct; ++i) {
      const core::ScanDecision d = policy.on_scan(r.source_host, r.timestamp, r.destination);
      if (d.action == core::ScanAction::Remove ||
          d.action == core::ScanAction::AllowAndRemove) {
        h.verdict.removed = true;
        h.verdict.removal_time = r.timestamp;
        {
          std::lock_guard lock(removed_mutex);
          removed.insert(r.source_host);
        }
        if (events != nullptr) {
          events->emit(obs::EventType::HostRemoved, stream_index, r.source_host, 0);
        }
        // Fire the alert hook only for genuine policy removals: restored and
        // pre-contained verdicts never re-announce, so gossip cannot echo.
        if (on_removal != nullptr && *on_removal) {
          (*on_removal)(r.source_host, r.timestamp);
        }
        break;
      }
      if (flagging_enabled && !h.cycle_flagged &&
          static_cast<double>(policy.count_of(r.source_host)) >= flag_threshold) {
        h.cycle_flagged = true;
        if (!h.verdict.flagged) {
          h.verdict.flagged = true;
          h.verdict.flag_time = r.timestamp;
        }
      }
    }
    if (failure_budget > 0 && !h.verdict.removed && h.cycle_failures >= failure_budget) {
      h.verdict.removed = true;
      h.verdict.removed_by_failures = true;
      h.verdict.removal_time = r.timestamp;
      if (trace != nullptr) {
        trace->instant("failure_removal", static_cast<double>(r.source_host));
      }
      if (events != nullptr) {
        events->emit(obs::EventType::HostRemoved, stream_index, r.source_host, 1);
      }
      {
        std::lock_guard lock(removed_mutex);
        removed.insert(r.source_host);
      }
      if (on_removal != nullptr && *on_removal) {
        (*on_removal)(r.source_host, r.timestamp);
      }
    }
  }

  /// Administrative removal via fleet alert (ShardTask::pre_contain).  A
  /// never-seen host gets a fresh zero-count state so its verdict reports the
  /// block; an already-removed host is untouched (the pre_contained flag
  /// marks only blocks this path performed).
  void apply_pre_containment(std::uint32_t id) {
    auto [it, inserted] = hosts.try_emplace(id);
    HostState& h = it->second;
    if (inserted) {
      h.counter = make_counter(id);
      h.counter_backend = effective_backend;
      h.verdict.host = id;
    }
    if (h.verdict.removed) return;
    h.verdict.removed = true;
    h.verdict.pre_contained = true;
    if (events != nullptr) {
      events->emit(obs::EventType::HostRemoved, last_stream_index, id, 2);
    }
    std::lock_guard lock(removed_mutex);
    removed.insert(id);
  }

  /// Counter factory for this shard: the compact backend binds to the
  /// shard-owned register pool (bank-colocated routing guarantees the host's
  /// bank lives here); the others go through the plain factory.
  [[nodiscard]] std::unique_ptr<DistinctCounter> make_counter(std::uint32_t host) {
    if (effective_backend == CounterBackend::Compact) {
      return std::make_unique<CompactCounter>(pool.bank_for(compact_bank_of(host)), host);
    }
    return make_distinct_counter(effective_backend, hll_precision);
  }

  /// One-way, one-rung backend degrade: exact → HLL → compact.  Each rung
  /// converts this shard's live counters, carrying every tally forward as
  /// the new backend's reported baseline so no host's spent budget is
  /// refunded or double-charged — the policy invariant count_of(host) ==
  /// counter->count() is preserved across the switch.  Exact state replays
  /// into the successor (set contents for HLL, slice registers for compact);
  /// an HLL sketch cannot be replayed, so HLL→compact is a baseline carry
  /// over an empty slice (conservative: repeats may charge again).
  void degrade() {
    if (effective_backend == CounterBackend::Compact) return;  // bottom rung
    const CounterBackend from = effective_backend;
    effective_backend =
        from == CounterBackend::Exact ? CounterBackend::Hll : CounterBackend::Compact;
    published_backend.store(static_cast<std::uint8_t>(effective_backend),
                            std::memory_order_release);
    ++backend_switches_this_run;
    if (trace != nullptr) trace->instant("backend_degrade", static_cast<double>(index));
    if (events != nullptr) {
      events->emit(obs::EventType::DegradeStep, last_stream_index, index,
                   static_cast<std::uint64_t>(effective_backend));
    }
    for (auto& [id, h] : hosts) {
      if (h.verdict.removed) continue;  // never counted again
      if (effective_backend == CounterBackend::Hll) {
        if (h.counter_backend == CounterBackend::Exact) {
          const auto& exact = static_cast<const ExactCounter&>(*h.counter);
          h.counter = std::make_unique<HllCounter>(hll_precision, exact.table(), exact.count());
          h.counter_backend = CounterBackend::Hll;
        }
      } else {
        SketchBank& bank = pool.bank_for(compact_bank_of(id));
        if (h.counter_backend == CounterBackend::Exact) {
          const auto& exact = static_cast<const ExactCounter&>(*h.counter);
          h.counter = std::make_unique<CompactCounter>(bank, id, exact.table(), exact.count());
          h.counter_backend = CounterBackend::Compact;
        } else if (h.counter_backend == CounterBackend::Hll) {
          h.counter = std::make_unique<CompactCounter>(bank, id, h.counter->count());
          h.counter_backend = CounterBackend::Compact;
        }
      }
    }
  }

  [[nodiscard]] std::uint64_t cycle_index(sim::SimTime now) const noexcept {
    return static_cast<std::uint64_t>(now / cycle_length);
  }

  Channel queue;
  core::ScanCountLimitPolicy policy;
  CounterBackend effective_backend;  ///< what newly seen hosts get
  /// Mirror of effective_backend readable from the ingest thread (the status
  /// plane): the worker owns effective_backend and publishes every rung walk
  /// here with a release store.
  std::atomic<std::uint8_t> published_backend;
  const int hll_precision;
  const double flag_threshold;
  const bool flagging_enabled;
  const sim::SimTime cycle_length;
  /// Shared compact-counter register pool.  Declared before `hosts` so the
  /// counters' raw bank pointers outlive them at destruction (members are
  /// destroyed in reverse declaration order).
  SharedSketchPool pool;
  const std::uint64_t failure_budget;  ///< 0 = tally failures but never remove
  HostTable<HostState> hosts;
  std::uint64_t suppressed = 0;
  std::uint64_t suppressed_flushed = 0;  ///< portion of `suppressed` already in obs
  std::exception_ptr error;

  unsigned index = 0;         ///< this shard's position (labels + obs cell)
  const Obs* obs = nullptr;   ///< non-null only when the pipeline is instrumented
  /// Alert hook (PipelineOptions::on_removal); null when unset.
  const std::function<void(std::uint32_t, sim::SimTime)>* on_removal = nullptr;
  obs::TraceRing* trace = nullptr;  ///< this shard worker's flight-recorder ring
  bool trace_wall = false;          ///< tracer in wall-clock mode (timing events on)
  obs::EventWriter* events = nullptr;  ///< this shard worker's journal writer
  /// Stream index of the last record handed to process() — the position a
  /// control-task event (degrade order, pre-containment) is journalled at.
  /// FIFO queues make it deterministic per shard.
  std::uint64_t last_stream_index = 0;

  // Fault wiring (configured before workers start, then worker-owned).
  bool kill_requested = false;
  std::uint64_t kill_after = 0;
  bool kill_fired = false;
  struct PendingDegrade {
    std::uint64_t after = 0;
    bool fired = false;
  };
  std::vector<PendingDegrade> degrade_after;
  struct PendingStall {
    std::uint64_t after = 0;
    double seconds = 0.0;
    bool fired = false;
  };
  std::vector<PendingStall> stalls;
  std::uint64_t batches_done = 0;

  std::uint64_t backend_switches_this_run = 0;  ///< degrade rungs walked this run
  unsigned degrades_sent = 0;  ///< ingest-side: overload degrade tasks queued
  std::atomic<bool> dead{false};   ///< worker returned via fault injection

  std::mutex removed_mutex;
  std::unordered_set<std::uint32_t> removed;  ///< hosts with removed verdicts
};

void PipelineOptions::validate() const {
  WORMS_EXPECTS(batch_size >= 1);
  compact.validate();  // every shard hosts a pool, whatever the start backend
  WORMS_EXPECTS(queue_capacity >= 1);
  WORMS_EXPECTS(shards <= 1024);  // 0 = auto-detect, resolved at construction
  WORMS_EXPECTS(overload.degrade_watermark <= overload.shed_watermark);
  WORMS_EXPECTS(overload.sustain_pushes >= 1);
  WORMS_EXPECTS((checkpoint_every == 0 || !checkpoint_path.empty()) &&
                "checkpoint_every requires checkpoint_path");
  WORMS_EXPECTS((metrics_export_every == 0 ||
                 (!metrics_export_path.empty() && metrics != nullptr)) &&
                "metrics_export_every requires metrics_export_path and a registry");
}

ContainmentPipeline::ContainmentPipeline(const PipelineOptions& options)
    : ContainmentPipeline(options, DeferWorkersTag{}) {
  start_workers();
}

ContainmentPipeline::ContainmentPipeline(const PipelineOptions& options, DeferWorkersTag)
    : config_(options),
      dead_letters_({.capacity = options.dead_letter_capacity,
                     .spill_path = options.dead_letter_spill,
                     .metrics = obs::kEnabled ? options.metrics : nullptr}) {
  config_.validate();
  if (config_.shards == 0) config_.shards = support::ThreadPool::hardware_threads();
  WORMS_EXPECTS(config_.shards >= 1 && config_.shards <= 1024);

  setup_metrics();
  shards_.reserve(config_.shards);
  pending_.resize(config_.shards);
  pending_indices_.resize(config_.shards);
  monitors_.resize(config_.shards);
  obs::Tracer* tracer = obs::kEnabled ? config_.tracer : nullptr;
  if (tracer != nullptr) trace_ = &tracer->ring(0);  // ingest thread
  obs::EventLog* events = obs::kEnabled ? config_.events : nullptr;
  if (events != nullptr) events_ = &events->writer(0);  // ingest thread
  for (unsigned s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(config_));
    shards_[s]->index = s;
    if (config_.on_removal) shards_[s]->on_removal = &config_.on_removal;
    if (obs_.ingested != nullptr) shards_[s]->obs = &obs_;
    if (tracer != nullptr) {
      // Logical tid s+1 regardless of which pool thread runs the worker, so
      // a respawned worker continues its predecessor's ring (the dead-flag
      // handshake orders the handoff).
      shards_[s]->trace = &tracer->ring(s + 1);
      shards_[s]->trace_wall = tracer->wall_clock();
    }
    // Same logical-id discipline as the trace rings: writer s+1 follows the
    // shard, not the pool thread, so respawned workers continue the stream.
    if (events != nullptr) shards_[s]->events = &events->writer(s + 1);
    pending_[s].reserve(config_.batch_size);
    pending_indices_[s].reserve(config_.batch_size);
  }

  for (const FaultPlan::WorkerFault& kill : config_.faults.kills) {
    WORMS_EXPECTS(kill.shard < config_.shards && "fault plan kill shard out of range");
    Shard& shard = *shards_[kill.shard];
    if (!shard.kill_requested || kill.after_batches < shard.kill_after) {
      shard.kill_requested = true;
      shard.kill_after = kill.after_batches;
    }
  }
  for (const FaultPlan::WorkerFault& degrade : config_.faults.degrades) {
    WORMS_EXPECTS(degrade.shard < config_.shards && "fault plan degrade shard out of range");
    shards_[degrade.shard]->degrade_after.push_back({degrade.after_batches, false});
  }
  for (const FaultPlan::StallFault& stall : config_.faults.stalls) {
    WORMS_EXPECTS(stall.shard < config_.shards && "fault plan stall shard out of range");
    shards_[stall.shard]->stalls.push_back({stall.after_batches, stall.seconds, false});
  }
  corrupt_indices_ = config_.faults.corrupt_records;
  std::sort(corrupt_indices_.begin(), corrupt_indices_.end());

  pool_ = std::make_unique<support::ThreadPool>(config_.shards);
  if (obs_.ingested != nullptr) pool_->instrument(*config_.metrics, "fleet_pool");
  if (tracer != nullptr) pool_->instrument_trace(*tracer, config_.shards + 1);
}

void ContainmentPipeline::setup_metrics() {
  if (!obs::kEnabled || config_.metrics == nullptr) return;
  obs::Registry& reg = *config_.metrics;
  obs_.ingested = &reg.counter("fleet_records_ingested_total");
  obs_.shed = &reg.counter("fleet_records_shed_total");
  obs_.suppressed = &reg.counter("fleet_records_suppressed_total");
  obs_.post_removal = &reg.counter("fleet_records_post_removal_total");
  obs_.checkpoints = &reg.counter("fleet_checkpoints_written_total");
  obs_.hosts_seen = &reg.counter("fleet_hosts_seen_total");
  obs_.hosts_flagged = &reg.counter("fleet_hosts_flagged_total");
  obs_.hosts_removed = &reg.counter("fleet_hosts_removed_total");
  obs_.hosts_pre_contained = &reg.counter("fleet_hosts_pre_contained_total");
  obs_.backend_switches = &reg.counter("fleet_backend_switches_total");
  obs_.workers_killed = &reg.counter("fleet_workers_killed_total");
  obs_.workers_respawned = &reg.counter("fleet_workers_respawned_total");
  for (int h = 0; h < 3; ++h) {
    obs_.health_transitions[static_cast<std::size_t>(h)] =
        &reg.counter(std::string("fleet_health_transitions_total{to=\"") +
                     to_string(static_cast<ShardHealth>(h)) + "\"}");
  }
  obs_.checkpoint_seconds = &reg.histogram("fleet_checkpoint_seconds");
  obs_.batch_records =
      &reg.histogram("fleet_batch_records", {.first_bound = 1.0, .bounds = 16});
  obs_.batch_seconds = &reg.histogram("fleet_batch_seconds");
  obs_.counter_memory = &reg.gauge("fleet_counter_memory_bytes");
  obs_.queue_depth.resize(config_.shards);
  obs_.queue_high_water.resize(config_.shards);
  obs_.shard_health.resize(config_.shards);
  for (unsigned s = 0; s < config_.shards; ++s) {
    const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
    obs_.queue_depth[s] = &reg.gauge("fleet_queue_depth" + label);
    obs_.queue_high_water[s] = &reg.gauge("fleet_queue_high_water" + label);
    obs_.shard_health[s] = &reg.gauge("fleet_shard_health" + label);
  }
}

void ContainmentPipeline::start_workers() {
  for (unsigned s = 0; s < config_.shards; ++s) {
    pool_->submit([this, s] { shards_[s]->consume(dead_letters_); });
  }
}

ContainmentPipeline::~ContainmentPipeline() {
  if (!finished_) {
    for (auto& shard : shards_) shard->queue.close();
    // ThreadPool's destructor drains the consume() jobs; a fault-killed
    // worker's leftover queue items are discarded with the queue.
  }
}

trace::ConnRecord ContainmentPipeline::corrupted(const trace::ConnRecord& record,
                                                 std::uint64_t index) const {
  const std::uint64_t roll = splitmix64(config_.faults.seed ^ index);
  if ((roll & 1) == 0 || !has_last_routed_) {
    // Malformed: a timestamp no real trace produces, caught at ingest.
    trace::ConnRecord bad = record;
    bad.timestamp = -1.0 - bad.timestamp;
    return bad;
  }
  // Duplicate: replay the last record that actually reached a shard — its
  // host's previous record is exactly it, so classification is guaranteed.
  return last_routed_;
}

void ContainmentPipeline::feed(const trace::ConnRecord& record) {
  WORMS_EXPECTS(!finished_);
  const std::uint64_t index = records_fed_++;  // obs flushes per batch, not per record
  trace::ConnRecord r = record;
  if (!corrupt_indices_.empty() &&
      std::binary_search(corrupt_indices_.begin(), corrupt_indices_.end(), index)) {
    if (trace_ != nullptr) trace_->instant("fault_corrupt", static_cast<double>(index));
    if (events_ != nullptr) {
      events_->emit(obs::EventType::FaultClauseFired, index,
                    static_cast<std::uint64_t>(obs::FaultKind::RecordCorrupt),
                    shard_of(record.source_host));
    }
    r = corrupted(record, index);
  }
  if (!std::isfinite(r.timestamp) || r.timestamp < 0.0) {
    if (trace_ != nullptr) {
      trace_->instant("dead_letter_malformed", static_cast<double>(index));
    }
    dead_letters_.report({DeadLetterReason::Malformed, r, index,
                          "non-finite or negative timestamp"});
    maybe_auto_checkpoint();
    maybe_auto_export_metrics();
    return;
  }
  const unsigned s = shard_of(r.source_host);
  if (monitors_[s].health == ShardHealth::Shedding) {
    // Shed only what the worker would suppress anyway: records of hosts whose
    // removal verdict is already final.  Semantically lossless.
    Shard& shard = *shards_[s];
    std::lock_guard lock(shard.removed_mutex);
    if (shard.removed.contains(r.source_host)) {
      ++records_shed_;
      maybe_auto_checkpoint();
      maybe_auto_export_metrics();
      return;
    }
  }
  pending_[s].push_back(r);
  pending_indices_[s].push_back(index);
  last_routed_ = r;
  has_last_routed_ = true;
  if (pending_[s].size() >= config_.batch_size) {
    ShardTask task{std::move(pending_[s]), std::move(pending_indices_[s]), nullptr, false};
    pending_[s] = Batch();
    pending_[s].reserve(config_.batch_size);
    pending_indices_[s] = std::vector<std::uint64_t>();
    pending_indices_[s].reserve(config_.batch_size);
    push_shard_task(s, std::move(task), /*sample_overload=*/true);
  }
  maybe_auto_checkpoint();
  maybe_auto_export_metrics();
}

void ContainmentPipeline::feed(std::span<const trace::ConnRecord> records) {
  WORMS_EXPECTS(!finished_);
  std::size_t i = 0;
  const std::size_t n = records.size();
  while (i < n) {
    // Chunk so that no checkpoint/metrics cadence boundary and no fault-plan
    // corruption index falls strictly inside a block: cadences fire exactly
    // at block ends, corrupt records detour through the single-record path.
    // Everything the single-record feed() observes per record, this path
    // observes at the same stream positions — that is the bit-identity
    // contract the determinism suites pin.
    std::uint64_t chunk = n - i;
    if (config_.checkpoint_every != 0) {
      chunk = std::min<std::uint64_t>(
          chunk, config_.checkpoint_every - records_fed_ % config_.checkpoint_every);
    }
    if (config_.metrics_export_every != 0) {
      chunk = std::min<std::uint64_t>(
          chunk, config_.metrics_export_every - records_fed_ % config_.metrics_export_every);
    }
    if (!corrupt_indices_.empty()) {
      const auto next = std::lower_bound(corrupt_indices_.begin(), corrupt_indices_.end(),
                                         records_fed_);
      if (next != corrupt_indices_.end()) {
        if (*next == records_fed_) {
          feed(records[i]);
          ++i;
          continue;
        }
        chunk = std::min<std::uint64_t>(chunk, *next - records_fed_);
      }
    }

    const trace::ConnRecord* last = nullptr;
    const std::size_t block_end = i + static_cast<std::size_t>(chunk);
    for (; i < block_end; ++i) {
      const trace::ConnRecord& r = records[i];
      const std::uint64_t index = records_fed_++;
      if (!std::isfinite(r.timestamp) || r.timestamp < 0.0) {
        if (trace_ != nullptr) {
          trace_->instant("dead_letter_malformed", static_cast<double>(index));
        }
        dead_letters_.report({DeadLetterReason::Malformed, r, index,
                              "non-finite or negative timestamp"});
        continue;
      }
      const unsigned s = shard_of(r.source_host);
      if (monitors_[s].health == ShardHealth::Shedding) {
        Shard& shard = *shards_[s];
        std::lock_guard lock(shard.removed_mutex);
        if (shard.removed.contains(r.source_host)) {
          ++records_shed_;
          continue;
        }
      }
      pending_[s].push_back(r);
      pending_indices_[s].push_back(index);
      last = &r;
      if (pending_[s].size() >= config_.batch_size) {
        ShardTask task{std::move(pending_[s]), std::move(pending_indices_[s]), nullptr, false};
        pending_[s] = Batch();
        pending_[s].reserve(config_.batch_size);
        pending_indices_[s] = std::vector<std::uint64_t>();
        pending_indices_[s].reserve(config_.batch_size);
        push_shard_task(s, std::move(task), /*sample_overload=*/true);
      }
    }
    if (last != nullptr) {
      last_routed_ = *last;
      has_last_routed_ = true;
    }
    maybe_auto_checkpoint();
    maybe_auto_export_metrics();
  }
}

void ContainmentPipeline::feed(const std::vector<trace::ConnRecord>& records) {
  feed(std::span<const trace::ConnRecord>(records));
}

void ContainmentPipeline::feed(trace::RecordSource& source) {
  // Block size trades RecordSource virtual-call amortization against cache
  // residency of the staging buffer (8192 records = 128 KiB).
  constexpr std::size_t kPullBlock = 8192;
  std::vector<trace::ConnRecord> block(kPullBlock);
  for (;;) {
    const std::size_t got = source.next_batch(std::span<trace::ConnRecord>(block));
    if (got == 0) break;
    feed(std::span<const trace::ConnRecord>(block.data(), got));
  }
}

void ContainmentPipeline::report_malformed(std::uint64_t source_line, std::string detail) {
  dead_letters_.report(
      {DeadLetterReason::Malformed, trace::ConnRecord{}, source_line, std::move(detail)});
}

void ContainmentPipeline::push_shard_task(unsigned shard_index, ShardTask task,
                                          bool sample_overload) {
  Shard& shard = *shards_[shard_index];
  const std::size_t batch_len = task.records.size();
  WORMS_TRACE_SPAN(batch_len > 0 ? trace_ : nullptr, "ingest_batch");
  bool first_attempt = true;
  bool stall_open = false;  // wall-gated queue_push_stall span in flight
  unsigned spins = 0;
  for (;;) {
    if (shard.dead.load(std::memory_order_acquire)) respawn(shard_index);
    if (shard.queue.try_push(task)) {
      if (stall_open) trace_->span_end("queue_push_stall");
      flush_ingest_counters();
      if (sample_overload && first_attempt) {
        if (obs_.batch_records != nullptr) {
          const double depth = static_cast<double>(shard.queue.size());
          obs_.queue_depth[shard_index]->set(depth);
          obs_.queue_high_water[shard_index]->update_max(depth);
          obs_.batch_records->record(static_cast<double>(batch_len));
        }
        observe_overload(shard_index,
                         static_cast<double>(shard.queue.size()) /
                             static_cast<double>(shard.queue.capacity()));
      }
      return;
    }
    if (sample_overload && first_attempt) {
      observe_overload(shard_index, 1.0);  // a failed push is a full queue
      first_attempt = false;
    }
    // Backpressure stall: a span (not an instant) so the viewer shows the
    // blocked ingest wall time.  Wall clocks only — in synthetic time the
    // retry count is scheduling noise.
    if (!stall_open && trace_ != nullptr && config_.tracer->wall_clock()) {
      trace_->span_begin("queue_push_stall");
      stall_open = true;
    }
    // Workers drain a full queue in tens of microseconds, so a fixed 1 ms nap
    // here used to be the pipeline's wall-clock floor: the ingest thread
    // oversleeps the drain by ~30x and every queue sits empty meanwhile.
    // Spin briefly (the common case resolves within one batch's processing
    // time), then back off in 50 us slices — the same cadence SpscRing's
    // consumer wait uses.
    if (++spins < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
}

void ContainmentPipeline::flush_ingest_counters() {
  // Ingest-side counters mirror plain members that feed() already maintains;
  // publishing the delta once per batch keeps the per-record hot path free of
  // atomic operations (the overhead budget in DESIGN.md §8).  Only the ingest
  // thread calls this, so the flushed markers need no synchronisation.
  if (obs_.ingested == nullptr) return;
  obs_.ingested->add(records_fed_ - obs_ingested_flushed_);
  obs_.shed->add(records_shed_ - obs_shed_flushed_);
  obs_ingested_flushed_ = records_fed_;
  obs_shed_flushed_ = records_shed_;
}

void ContainmentPipeline::observe_overload(unsigned shard_index, double fill_fraction) {
  Monitor& m = monitors_[shard_index];
  const OverloadPolicy& p = config_.overload;
  if (fill_fraction >= p.shed_watermark) {
    ++m.hot;
    ++m.critical;
    m.cool = 0;
  } else if (fill_fraction >= p.degrade_watermark) {
    ++m.hot;
    m.critical = 0;
    m.cool = 0;
  } else {
    ++m.cool;
    m.hot = 0;
    m.critical = 0;
  }

  const auto transition = [&](ShardHealth next) {
    m.health = next;
    m.hot = m.critical = m.cool = 0;
    if (obs_.ingested != nullptr) {
      obs_.health_transitions[static_cast<std::size_t>(next)]->add(1);
      obs_.shard_health[shard_index]->set(static_cast<double>(next));
    }
    if (trace_ != nullptr) {
      const char* name = next == ShardHealth::Healthy    ? "health_healthy"
                         : next == ShardHealth::Degraded ? "health_degraded"
                                                         : "health_shedding";
      trace_->instant(name, static_cast<double>(shard_index));
    }
    // Overload transitions are queue-timing artifacts: journal them only on
    // the wall clock, so synthetic journals stay scheduling-independent.
    if (events_ != nullptr && events_->wall_clock()) {
      events_->emit(obs::EventType::OverloadTransition, records_fed_, shard_index,
                    static_cast<std::uint64_t>(next));
    }
  };
  switch (m.health) {
    case ShardHealth::Healthy:
      if (m.hot >= p.sustain_pushes) {
        transition(ShardHealth::Degraded);
        // First ladder rung: a freshly degraded shard steps its counters one
        // backend down (exact→HLL, or HLL→compact for an HLL-configured run).
        Shard& shard = *shards_[shard_index];
        if (p.auto_degrade_backend && config_.backend != CounterBackend::Compact &&
            shard.degrades_sent == 0) {
          shard.degrades_sent = 1;
          push_shard_task(shard_index, ShardTask{{}, {}, nullptr, true},
                          /*sample_overload=*/false);
        }
      }
      break;
    case ShardHealth::Degraded:
      if (m.critical >= p.sustain_pushes) {
        transition(ShardHealth::Shedding);
        // Second rung: shedding is the last resort, so the shard also takes
        // the final memory relief step down to the compact pool.
        Shard& shard = *shards_[shard_index];
        if (p.auto_degrade_backend && shard.degrades_sent < 2) {
          shard.degrades_sent = 2;
          push_shard_task(shard_index, ShardTask{{}, {}, nullptr, true},
                          /*sample_overload=*/false);
        }
      } else if (m.cool >= p.sustain_pushes) {
        transition(ShardHealth::Healthy);
      }
      break;
    case ShardHealth::Shedding:
      if (m.cool >= p.sustain_pushes) transition(ShardHealth::Degraded);
      break;
  }
}

void ContainmentPipeline::respawn(unsigned shard_index) {
  Shard& shard = *shards_[shard_index];
  shard.dead.store(false, std::memory_order_release);
  ++workers_respawned_;
  if (obs_.workers_respawned != nullptr) obs_.workers_respawned->add(1);
  if (trace_ != nullptr) trace_->instant("worker_respawned", static_cast<double>(shard_index));
  // The respawn position depends on when the ingest thread *notices* the dead
  // flag — wall-clock journals only, like the overload transitions above.
  if (events_ != nullptr && events_->wall_clock()) {
    events_->emit(obs::EventType::FaultClauseFired, records_fed_,
                  static_cast<std::uint64_t>(obs::FaultKind::WorkerRespawn), shard_index);
  }
  pool_->submit([this, shard_index] { shards_[shard_index]->consume(dead_letters_); });
}

void ContainmentPipeline::respawn_dead_workers() {
  for (unsigned s = 0; s < config_.shards; ++s) {
    if (shards_[s]->dead.load(std::memory_order_acquire)) respawn(s);
  }
}

void ContainmentPipeline::flush_batches() {
  for (unsigned s = 0; s < config_.shards; ++s) {
    if (pending_[s].empty()) continue;
    ShardTask task{std::move(pending_[s]), std::move(pending_indices_[s]), nullptr, false};
    pending_[s] = Batch();
    pending_indices_[s] = std::vector<std::uint64_t>();
    push_shard_task(s, std::move(task), /*sample_overload=*/false);
  }
}

void ContainmentPipeline::quiesce() {
  flush_batches();
  auto gate = std::make_shared<Gate>(config_.shards);
  for (unsigned s = 0; s < config_.shards; ++s) {
    push_shard_task(s, ShardTask{{}, {}, gate, false}, /*sample_overload=*/false);
  }
  // FIFO queues: once every worker has arrived, every record fed before this
  // call has been fully processed.  A fault can kill a worker with the gate
  // still queued, so poll-and-respawn rather than wait unconditionally.
  while (!gate->wait_for(kWorkerPollInterval)) {
    respawn_dead_workers();
  }
}

void ContainmentPipeline::maybe_auto_checkpoint() {
  if (config_.checkpoint_every == 0) return;
  if (records_fed_ % config_.checkpoint_every == 0) {
    write_checkpoint(config_.checkpoint_path);
  }
}

void ContainmentPipeline::maybe_auto_export_metrics() {
  // Gated on the registry, not on kEnabled: a WORMS_OBS=OFF build still
  // publishes the (all-zero) snapshot so tooling that polls the file works.
  if (config_.metrics_export_every == 0 || config_.metrics == nullptr) return;
  if (records_fed_ % config_.metrics_export_every != 0) return;
  WORMS_TRACE_SPAN(trace_, "metrics_export");
  flush_ingest_counters();
  const obs::MetricsSnapshot snap = config_.metrics->snapshot();
  obs::write_metrics_file(config_.metrics_export_path,
                          config_.metrics_export_json
                              ? obs::Registry::render_json(snap)
                              : obs::Registry::render_prometheus(snap));
  ++metrics_exports_written_;
}

void ContainmentPipeline::write_checkpoint(const std::string& path) {
  WORMS_EXPECTS(!finished_);
  WORMS_EXPECTS(!path.empty());
  WORMS_TRACE_SPAN(trace_, "checkpoint_write");
  const support::Stopwatch watch;
  quiesce();
  const std::string blob = encode_snapshot();
  write_snapshot_file(path, blob);
  ++checkpoints_written_;
  last_checkpoint_position_ = records_fed_;
  if (events_ != nullptr) {
    events_->emit(obs::EventType::CheckpointWrite, records_fed_, checkpoints_written_,
                  blob.size());
  }
  flush_ingest_counters();
  if (obs_.checkpoints != nullptr) {
    obs_.checkpoints->add(1);
    obs_.checkpoint_seconds->record(watch.elapsed_seconds());
  }
}

std::string ContainmentPipeline::snapshot_blob() {
  WORMS_EXPECTS(!finished_);
  WORMS_TRACE_SPAN(trace_, "checkpoint_write");
  const support::Stopwatch watch;
  quiesce();
  std::string blob = encode_snapshot();
  ++checkpoints_written_;
  last_checkpoint_position_ = records_fed_;
  if (events_ != nullptr) {
    events_->emit(obs::EventType::CheckpointWrite, records_fed_, checkpoints_written_,
                  blob.size());
  }
  flush_ingest_counters();
  if (obs_.checkpoints != nullptr) {
    obs_.checkpoints->add(1);
    obs_.checkpoint_seconds->record(watch.elapsed_seconds());
  }
  return blob;
}

void ContainmentPipeline::pre_contain(std::span<const std::uint32_t> hosts) {
  WORMS_EXPECTS(!finished_);
  if (hosts.empty()) return;
  // Flush pending batches first so the control task is ordered exactly at the
  // current stream position: records fed before this call are processed
  // before the block lands, records fed after it are suppressed.
  flush_batches();
  std::vector<std::vector<std::uint32_t>> per_shard(config_.shards);
  for (const std::uint32_t host : hosts) {
    per_shard[shard_of(host)].push_back(host);
  }
  for (unsigned s = 0; s < config_.shards; ++s) {
    if (per_shard[s].empty()) continue;
    ShardTask task;
    task.pre_contain = std::move(per_shard[s]);
    push_shard_task(s, std::move(task), /*sample_overload=*/false);
  }
}

std::string ContainmentPipeline::encode_snapshot() const {
  BinaryWriter out;
  out.put_u32(kSnapshotMagic);
  out.put_u16(kSnapshotVersion);
  out.put_u8(static_cast<std::uint8_t>(config_.backend));
  out.put_u8(static_cast<std::uint8_t>(config_.hll_precision));
  // v2: pool geometry and failure budget are config-identity fields — a
  // restore under different values would misdecode slices or change verdicts.
  out.put_u8(static_cast<std::uint8_t>(config_.compact.bits_per_host));
  out.put_u32(config_.compact.virtual_registers);
  out.put_u64(config_.compact.expected_hosts);
  out.put_u64(config_.failure_budget);
  out.put_u64(config_.policy.scan_limit);
  out.put_f64(config_.policy.cycle_length);
  out.put_f64(config_.policy.check_fraction);
  out.put_u32(config_.shards);
  out.put_u64(records_fed_);
  out.put_u64(records_shed_);
  std::uint64_t suppressed = restored_suppressed_;
  std::uint64_t switches = restored_backend_switches_;
  std::uint64_t host_count = 0;
  for (const auto& shard : shards_) {
    suppressed += shard->suppressed;
    switches += shard->backend_switches_this_run;
    host_count += shard->hosts.size();
  }
  out.put_u64(suppressed);
  const DeadLetterStats dl = dead_letters_.stats();
  out.put_u64(dl.malformed);
  out.put_u64(dl.out_of_order);
  out.put_u64(dl.duplicate);
  out.put_u64(dl.overflow_dropped);
  out.put_u64(switches);
  // +1: this snapshot counts itself, so a restored run's checkpoint tally
  // lines up with the uninterrupted run's.
  out.put_u64(checkpoints_written_ + 1);
  out.put_u8(has_last_routed_ ? 1 : 0);
  out.put_f64(last_routed_.timestamp);
  out.put_u32(last_routed_.source_host);
  out.put_u32(last_routed_.destination.value());

  // Shards whose effective backend degraded below the configured one (with
  // the rung they sit on); only meaningful to re-apply when the restoring
  // shard count matches.
  std::vector<std::uint32_t> degraded_shards;
  for (std::uint32_t s = 0; s < config_.shards; ++s) {
    if (shards_[s]->effective_backend != config_.backend) {
      degraded_shards.push_back(s);
    }
  }
  out.put_u32(static_cast<std::uint32_t>(degraded_shards.size()));
  for (const std::uint32_t s : degraded_shards) {
    out.put_u32(s);
    out.put_u8(static_cast<std::uint8_t>(shards_[s]->effective_backend));
  }

  // Shared-pool bank section, ordered by global bank index (bank-colocated
  // routing puts each bank on exactly one shard, so no index repeats).  The
  // incrementally maintained inverse_sum travels verbatim: recomputing it on
  // restore could differ in the last ulp and fork every later estimate.
  std::vector<const SketchBank*> banks;
  for (const auto& shard : shards_) {
    for (const auto& [index, bank] : shard->pool.banks()) banks.push_back(bank.get());
  }
  std::sort(banks.begin(), banks.end(), [](const SketchBank* a, const SketchBank* b) {
    return a->bank_index() < b->bank_index();
  });
  out.put_u32(static_cast<std::uint32_t>(banks.size()));
  for (const SketchBank* bank : banks) {
    out.put_u32(bank->bank_index());
    out.put_u32(static_cast<std::uint32_t>(bank->register_count()));
    out.put_f64(bank->inverse_sum());
    out.put_u64(bank->zero_registers());
    out.put_bytes(bank->registers().data(), bank->registers().size());
  }

  out.put_u64(host_count);
  for (const auto& shard : shards_) {
    for (const auto& [id, h] : shard->hosts) {
      out.put_u32(id);
      out.put_u64(h.cycle);
      std::uint8_t flags = 0;
      if (h.cycle_flagged) flags |= 1u;
      if (h.verdict.flagged) flags |= 2u;
      if (h.verdict.removed) flags |= 4u;
      if (h.has_prev) flags |= 8u;
      if (h.verdict.pre_contained) flags |= 16u;
      if (h.verdict.removed_by_failures) flags |= 32u;
      out.put_u8(flags);
      out.put_f64(h.last_time);
      out.put_u32(h.last_destination);
      out.put_u64(h.verdict.records_seen);
      out.put_u64(h.verdict.peak_distinct);
      out.put_f64(h.verdict.flag_time);
      out.put_f64(h.verdict.removal_time);
      out.put_u64(h.verdict.failures_seen);
      out.put_u64(h.verdict.peak_failures);
      out.put_u64(h.cycle_failures);
      encode_counter(out, *h.counter);
    }
  }
  return out.buffer();
}

void ContainmentPipeline::decode_snapshot(const std::string& payload) {
  BinaryReader in(payload);
  WORMS_EXPECTS(in.get_u32() == kSnapshotMagic && "not a fleet pipeline snapshot");
  WORMS_EXPECTS(in.get_u16() == kSnapshotVersion && "unsupported snapshot version");
  WORMS_EXPECTS(static_cast<CounterBackend>(in.get_u8()) == config_.backend &&
                "snapshot counter backend differs from config");
  WORMS_EXPECTS(static_cast<int>(in.get_u8()) == config_.hll_precision &&
                "snapshot HLL precision differs from config");
  WORMS_EXPECTS(static_cast<std::uint32_t>(in.get_u8()) == config_.compact.bits_per_host &&
                "snapshot compact bits-per-host differs from config");
  WORMS_EXPECTS(in.get_u32() == config_.compact.virtual_registers &&
                "snapshot compact virtual-register count differs from config");
  WORMS_EXPECTS(in.get_u64() == config_.compact.expected_hosts &&
                "snapshot compact expected-host count differs from config");
  WORMS_EXPECTS(in.get_u64() == config_.failure_budget &&
                "snapshot failure budget differs from config");
  WORMS_EXPECTS(in.get_u64() == config_.policy.scan_limit &&
                "snapshot scan limit differs from config");
  WORMS_EXPECTS(in.get_f64() == config_.policy.cycle_length &&
                "snapshot cycle length differs from config");
  WORMS_EXPECTS(in.get_f64() == config_.policy.check_fraction &&
                "snapshot check fraction differs from config");
  const std::uint32_t snapshot_shards = in.get_u32();
  records_fed_ = in.get_u64();
  records_shed_ = in.get_u64();
  restored_suppressed_ = in.get_u64();
  DeadLetterStats dl;
  dl.malformed = in.get_u64();
  dl.out_of_order = in.get_u64();
  dl.duplicate = in.get_u64();
  dl.overflow_dropped = in.get_u64();
  dead_letters_.preload(dl);
  restored_backend_switches_ = in.get_u64();
  checkpoints_written_ = in.get_u64();
  // Preload the streaming obs counters with the restored baselines so a
  // resumed run's totals are identical to an uninterrupted run's (the golden
  // resume test depends on this; dead letters preload via the channel above).
  // flush_ingest_counters() publishes records_fed_/records_shed_ and advances
  // the flushed markers, so later batch flushes add only post-resume deltas.
  flush_ingest_counters();
  if (obs_.ingested != nullptr) {
    obs_.suppressed->add(restored_suppressed_);
    obs_.checkpoints->add(checkpoints_written_);
  }
  has_last_routed_ = in.get_u8() != 0;
  last_routed_.timestamp = in.get_f64();
  last_routed_.source_host = in.get_u32();
  last_routed_.destination = worms::net::Ipv4Address(in.get_u32());

  const std::uint32_t degraded_count = in.get_u32();
  for (std::uint32_t i = 0; i < degraded_count; ++i) {
    const std::uint32_t s = in.get_u32();
    WORMS_EXPECTS(s < snapshot_shards && "degraded shard index out of range in snapshot");
    const auto rung = in.get_u8();
    WORMS_EXPECTS(rung <= 2 && "degraded shard backend out of range in snapshot");
    if (snapshot_shards == config_.shards) {
      // Same sharding: the degraded shard resumes on its rung (new hosts get
      // the degraded backend).  Different sharding: per-host counters still
      // restore exactly, but shard-level degradation does not carry over.
      // Restored rungs are state, not transitions — no DegradeStep re-emits.
      shards_[s]->effective_backend = static_cast<CounterBackend>(rung);
      shards_[s]->published_backend.store(rung, std::memory_order_release);
      shards_[s]->degrades_sent = 2;  // the overload ladder never re-degrades
    }
  }

  // Shared-pool banks restore before any host so a compact counter's decode
  // can bind to live registers.  Bank-colocated routing decides the owner:
  // bank b's hosts all route to shard b % shards, whatever the shard count.
  const std::uint32_t bank_count = in.get_u32();
  for (std::uint32_t i = 0; i < bank_count; ++i) {
    const std::uint32_t bank_index = in.get_u32();
    WORMS_EXPECTS(bank_index < kCompactBanks && "bank index out of range in snapshot");
    const std::uint32_t register_count = in.get_u32();
    WORMS_EXPECTS(register_count == config_.compact.registers_per_bank() &&
                  "snapshot bank register count differs from pool geometry");
    const double inverse_sum = in.get_f64();
    const std::uint64_t zero_registers = in.get_u64();
    std::vector<std::uint8_t> registers(register_count);
    in.get_bytes(registers.data(), registers.size());
    Shard& owner = *shards_[bank_index % config_.shards];
    owner.pool.bank_for(bank_index).restore(registers, inverse_sum, zero_registers);
  }

  const std::uint64_t host_count = in.get_u64();
  for (std::uint64_t i = 0; i < host_count; ++i) {
    const std::uint32_t id = in.get_u32();
    Shard& shard = *shards_[shard_of(id)];
    auto [it, inserted] = shard.hosts.try_emplace(id);
    WORMS_EXPECTS(inserted && "duplicate host in snapshot");
    HostState& h = it->second;
    h.cycle = in.get_u64();
    const std::uint8_t flags = in.get_u8();
    h.cycle_flagged = (flags & 1u) != 0;
    h.verdict.host = id;
    h.verdict.flagged = (flags & 2u) != 0;
    h.verdict.removed = (flags & 4u) != 0;
    h.has_prev = (flags & 8u) != 0;
    h.verdict.pre_contained = (flags & 16u) != 0;
    h.verdict.removed_by_failures = (flags & 32u) != 0;
    h.last_time = in.get_f64();
    h.last_destination = in.get_u32();
    h.verdict.records_seen = in.get_u64();
    h.verdict.peak_distinct = in.get_u64();
    h.verdict.flag_time = in.get_f64();
    h.verdict.removal_time = in.get_f64();
    h.verdict.failures_seen = in.get_u64();
    h.verdict.peak_failures = in.get_u64();
    h.cycle_failures = in.get_u64();
    const CompactDecodeContext compact{&shard.pool, id};
    h.counter = decode_counter(in, &compact);
    h.counter_backend = h.counter->backend();
    if (h.verdict.removed) {
      shard.removed.insert(id);
    } else {
      // Non-removed hosts satisfy count_of(host) == counter->count() at any
      // quiesce point (each new-distinct unit is forwarded 1:1 into the
      // policy), so policy state reconstructs from counter state.
      shard.policy.restore_counter(id, h.cycle, h.counter->count(), h.cycle_flagged);
    }
  }
  WORMS_EXPECTS(in.remaining() == 0 && "trailing bytes in snapshot");
  last_checkpoint_position_ = records_fed_;
  if (events_ != nullptr) {
    events_->emit(obs::EventType::CheckpointRestore, records_fed_, snapshot_shards,
                  payload.size());
  }
}

std::unique_ptr<ContainmentPipeline> ContainmentPipeline::restore(const PipelineOptions& config,
                                                                  const std::string& path) {
  return restore_from_blob(config, read_snapshot_file(path));
}

std::unique_ptr<ContainmentPipeline> ContainmentPipeline::restore_from_blob(
    const PipelineOptions& config, const std::string& snapshot) {
  std::unique_ptr<ContainmentPipeline> pipeline(
      new ContainmentPipeline(config, DeferWorkersTag{}));
  {
    WORMS_TRACE_SPAN(pipeline->trace_, "checkpoint_restore");
    pipeline->decode_snapshot(snapshot);
  }
  pipeline->start_workers();
  return pipeline;
}

PipelineResult ContainmentPipeline::finish() {
  WORMS_EXPECTS(!finished_);
  flush_batches();
  for (auto& shard : shards_) shard->queue.close();
  // A fault-killed worker leaves its queue unread; respawn until every shard
  // drains.  Kills fire once each, so this terminates.
  for (;;) {
    pool_->wait_idle();
    bool respawned = false;
    for (unsigned s = 0; s < config_.shards; ++s) {
      if (shards_[s]->dead.load(std::memory_order_acquire)) {
        respawn(s);
        respawned = true;
      }
    }
    if (!respawned) break;
  }
  finished_ = true;
  const double elapsed = stopwatch_.elapsed_seconds();

  for (const auto& shard : shards_) {
    if (shard->error) std::rethrow_exception(shard->error);
  }

  PipelineResult result;
  result.verdicts.node_id = config_.node_id;
  PipelineMetrics& m = result.metrics;
  m.records_processed = records_fed_;
  m.elapsed_seconds = elapsed;
  m.records_per_second =
      elapsed > 0.0 ? static_cast<double>(records_fed_) / elapsed : 0.0;
  m.shards = config_.shards;
  m.dead_letters = dead_letters_.stats();
  m.records_shed = records_shed_;
  m.backend_switches = restored_backend_switches_;
  m.workers_respawned = workers_respawned_;
  m.checkpoints_written = checkpoints_written_;
  m.metrics_exports = metrics_exports_written_;
  m.records_suppressed = restored_suppressed_;
  for (const Monitor& monitor : monitors_) m.shard_health.push_back(monitor.health);

  auto& hosts = result.verdicts.hosts;
  for (const auto& shard : shards_) {
    m.records_suppressed += shard->suppressed;
    m.backend_switches += shard->backend_switches_this_run;
    if (shard->kill_fired) ++m.workers_killed;
    m.queue_high_water.push_back(shard->queue.high_water());
    for (const auto& [id, state] : shard->hosts) {
      m.counter_memory_bytes += state.counter->memory_bytes();
      hosts.push_back(state.verdict);
    }
  }
  std::sort(hosts.begin(), hosts.end(),
            [](const HostVerdict& a, const HostVerdict& b) { return a.host < b.host; });
  for (const HostVerdict& v : hosts) {
    if (v.flagged) ++result.verdicts.hosts_flagged;
    if (v.removed) ++result.verdicts.hosts_removed;
    if (v.pre_contained) ++result.verdicts.hosts_pre_contained;
    if (v.removed_by_failures) ++result.verdicts.hosts_removed_by_failures;
  }

  // Verdict-derived metrics, folded in exactly once.  post_removal is
  // suppressed + shed: each individual split is racy under shedding (the same
  // record may be shed at ingest or suppressed by the worker), but their sum
  // — records arriving after the host's removal verdict — is deterministic,
  // which is what the golden tests compare.
  flush_ingest_counters();
  if (obs_.ingested != nullptr) {
    obs_.hosts_seen->add(hosts.size());
    obs_.hosts_flagged->add(result.verdicts.hosts_flagged);
    obs_.hosts_removed->add(result.verdicts.hosts_removed);
    obs_.hosts_pre_contained->add(result.verdicts.hosts_pre_contained);
    obs_.post_removal->add(m.records_suppressed + m.records_shed);
    obs_.backend_switches->add(m.backend_switches);
    obs_.workers_killed->add(m.workers_killed);
    obs_.counter_memory->set(static_cast<double>(m.counter_memory_bytes));
    for (unsigned s = 0; s < config_.shards; ++s) {
      obs_.queue_high_water[s]->update_max(static_cast<double>(m.queue_high_water[s]));
      obs_.shard_health[s]->set(static_cast<double>(monitors_[s].health));
    }
  }
  return result;
}

PipelineStatus ContainmentPipeline::status() const {
  PipelineStatus s;
  s.records_fed = records_fed_;
  s.records_shed = records_shed_;
  s.checkpoints_written = checkpoints_written_;
  s.checkpoint_position = last_checkpoint_position_;
  s.configured_backend = config_.backend;
  s.dead_letters = dead_letters_.stats();
  s.shard_backend.reserve(config_.shards);
  s.shard_health.reserve(config_.shards);
  s.queue_depth.reserve(config_.shards);
  for (unsigned i = 0; i < config_.shards; ++i) {
    s.shard_backend.push_back(static_cast<CounterBackend>(
        shards_[i]->published_backend.load(std::memory_order_acquire)));
    s.shard_health.push_back(monitors_[i].health);
    s.queue_depth.push_back(shards_[i]->queue.size());
  }
  return s;
}

PipelineResult ContainmentPipeline::run(const PipelineOptions& options,
                                        const std::vector<trace::ConnRecord>& records) {
  ContainmentPipeline pipeline(options);
  pipeline.feed(records);
  return pipeline.finish();
}

PipelineResult ContainmentPipeline::run(const PipelineOptions& options,
                                        trace::RecordSource& source) {
  ContainmentPipeline pipeline(options);
  pipeline.feed(source);
  return pipeline.finish();
}

void write_verdicts_csv(const std::string& path, const ContainmentVerdicts& v) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  WORMS_EXPECTS(f != nullptr && "cannot open verdicts CSV file");
  std::fprintf(f,
               "host,records_seen,peak_distinct,flagged,flag_time,removed,removal_time,"
               "pre_contained,failures_seen,peak_failures,removed_by_failures,node\n");
  for (const HostVerdict& h : v.hosts) {
    std::fprintf(f, "%u,%llu,%llu,%d,%.17g,%d,%.17g,%d,%llu,%llu,%d,%llu\n", h.host,
                 static_cast<unsigned long long>(h.records_seen),
                 static_cast<unsigned long long>(h.peak_distinct), h.flagged ? 1 : 0,
                 h.flag_time, h.removed ? 1 : 0, h.removal_time, h.pre_contained ? 1 : 0,
                 static_cast<unsigned long long>(h.failures_seen),
                 static_cast<unsigned long long>(h.peak_failures),
                 h.removed_by_failures ? 1 : 0,
                 static_cast<unsigned long long>(v.node_id));
  }
  WORMS_ENSURES(std::fclose(f) == 0);
}

}  // namespace worms::fleet
