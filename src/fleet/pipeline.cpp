#include "fleet/pipeline.hpp"

#include <algorithm>
#include <exception>
#include <unordered_map>
#include <utility>

#include "fleet/bounded_queue.hpp"
#include "support/check.hpp"
#include "support/thread_pool.hpp"

namespace worms::fleet {

namespace {

using Batch = std::vector<trace::ConnRecord>;

/// Per-host streaming state owned by exactly one shard worker.
struct HostState {
  std::unique_ptr<DistinctCounter> counter;
  std::uint64_t cycle = 0;
  bool cycle_flagged = false;  ///< crossed f·M in the current cycle
  sim::SimTime last_time = 0.0;
  HostVerdict verdict;
};

}  // namespace

const HostVerdict* ContainmentVerdicts::find(std::uint32_t host) const noexcept {
  const auto it = std::lower_bound(
      hosts.begin(), hosts.end(), host,
      [](const HostVerdict& v, std::uint32_t h) { return v.host < h; });
  return (it != hosts.end() && it->host == host) ? &*it : nullptr;
}

std::vector<std::uint32_t> ContainmentVerdicts::removed_hosts() const {
  std::vector<std::uint32_t> out;
  for (const HostVerdict& v : hosts) {
    if (v.removed) out.push_back(v.host);
  }
  return out;
}

/// One shard: a queue, the per-host states of `host % shards == index`, and a
/// single Attempts-mode ScanCountLimitPolicy those states drive.  Everything
/// here is touched only by the shard's worker thread (and by finish() after
/// the join), so no locking beyond the queue is needed.
struct ContainmentPipeline::Shard {
  explicit Shard(const PipelineConfig& config)
      : queue(config.queue_capacity),
        policy({.scan_limit = config.policy.scan_limit,
                .cycle_length = config.policy.cycle_length,
                .check_fraction = config.policy.check_fraction,
                .counting = core::ScanCountLimitPolicy::CountingMode::Attempts}),
        backend(config.backend),
        hll_precision(config.hll_precision),
        flag_threshold(config.policy.check_fraction < 1.0
                           ? config.policy.check_fraction *
                                 static_cast<double>(config.policy.scan_limit)
                           : 0.0),
        flagging_enabled(config.policy.check_fraction < 1.0),
        cycle_length(config.policy.cycle_length) {}

  void consume() {
    while (auto batch = queue.pop()) {
      if (error) continue;  // keep draining so the producer never blocks
      try {
        for (const trace::ConnRecord& r : *batch) process(r);
      } catch (...) {
        error = std::current_exception();
      }
    }
  }

  void process(const trace::ConnRecord& r) {
    auto [it, inserted] = hosts.try_emplace(r.source_host);
    HostState& h = it->second;
    if (inserted) {
      h.counter = make_distinct_counter(backend, hll_precision);
      h.verdict.host = r.source_host;
      h.cycle = cycle_index(r.timestamp);
    } else {
      WORMS_EXPECTS(r.timestamp >= h.last_time &&
                    "pipeline input must be time-ordered per source host");
    }
    h.last_time = r.timestamp;
    if (h.verdict.removed) {
      ++suppressed;  // host is offline for heavy-duty checking
      return;
    }
    ++h.verdict.records_seen;

    const std::uint64_t cycle = cycle_index(r.timestamp);
    if (cycle != h.cycle) {
      // Containment-cycle boundary: both the backend state and the policy's
      // internal count restart (the policy resets itself on its next
      // on_scan; the counter is ours to reset).
      h.counter->reset();
      h.cycle = cycle;
      h.cycle_flagged = false;
    }

    const std::uint32_t new_distinct = h.counter->add(r.destination.value());
    if (h.counter->count() > h.verdict.peak_distinct) {
      h.verdict.peak_distinct = h.counter->count();
    }
    // Forward one counted scan per new distinct destination; the policy
    // applies the budget M and the flag threshold exactly as it would have
    // in ExactDistinct mode.
    for (std::uint32_t i = 0; i < new_distinct; ++i) {
      const core::ScanDecision d = policy.on_scan(r.source_host, r.timestamp, r.destination);
      if (d.action == core::ScanAction::Remove ||
          d.action == core::ScanAction::AllowAndRemove) {
        h.verdict.removed = true;
        h.verdict.removal_time = r.timestamp;
        break;
      }
      if (flagging_enabled && !h.cycle_flagged &&
          static_cast<double>(policy.count_of(r.source_host)) >= flag_threshold) {
        h.cycle_flagged = true;
        if (!h.verdict.flagged) {
          h.verdict.flagged = true;
          h.verdict.flag_time = r.timestamp;
        }
      }
    }
  }

  [[nodiscard]] std::uint64_t cycle_index(sim::SimTime now) const noexcept {
    return static_cast<std::uint64_t>(now / cycle_length);
  }

  BoundedMpscQueue<Batch> queue;
  core::ScanCountLimitPolicy policy;
  const CounterBackend backend;
  const int hll_precision;
  const double flag_threshold;
  const bool flagging_enabled;
  const sim::SimTime cycle_length;
  std::unordered_map<std::uint32_t, HostState> hosts;
  std::uint64_t suppressed = 0;
  std::exception_ptr error;
};

ContainmentPipeline::ContainmentPipeline(const PipelineConfig& config) : config_(config) {
  WORMS_EXPECTS(config.batch_size >= 1);
  WORMS_EXPECTS(config.queue_capacity >= 1);
  if (config_.shards == 0) config_.shards = support::ThreadPool::hardware_threads();
  WORMS_EXPECTS(config_.shards >= 1 && config_.shards <= 1024);

  shards_.reserve(config_.shards);
  pending_.resize(config_.shards);
  for (unsigned s = 0; s < config_.shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(config_));
    pending_[s].reserve(config_.batch_size);
  }
  pool_ = std::make_unique<support::ThreadPool>(config_.shards);
  for (unsigned s = 0; s < config_.shards; ++s) {
    pool_->submit([shard = shards_[s].get()] { shard->consume(); });
  }
}

ContainmentPipeline::~ContainmentPipeline() {
  if (!finished_) {
    for (auto& shard : shards_) shard->queue.close();
    // ThreadPool's destructor drains the consume() jobs.
  }
}

void ContainmentPipeline::feed(const trace::ConnRecord& record) {
  WORMS_EXPECTS(!finished_);
  const unsigned s = record.source_host % config_.shards;
  Batch& batch = pending_[s];
  batch.push_back(record);
  ++records_fed_;
  if (batch.size() >= config_.batch_size) {
    shards_[s]->queue.push(std::move(batch));
    batch = Batch();
    batch.reserve(config_.batch_size);
  }
}

void ContainmentPipeline::feed(const std::vector<trace::ConnRecord>& records) {
  for (const trace::ConnRecord& r : records) feed(r);
}

void ContainmentPipeline::flush_batches() {
  for (unsigned s = 0; s < config_.shards; ++s) {
    if (!pending_[s].empty()) shards_[s]->queue.push(std::move(pending_[s]));
    pending_[s] = Batch();
  }
}

PipelineResult ContainmentPipeline::finish() {
  WORMS_EXPECTS(!finished_);
  flush_batches();
  for (auto& shard : shards_) shard->queue.close();
  pool_->wait_idle();
  finished_ = true;
  const double elapsed = stopwatch_.elapsed_seconds();

  for (const auto& shard : shards_) {
    if (shard->error) std::rethrow_exception(shard->error);
  }

  PipelineResult result;
  PipelineMetrics& m = result.metrics;
  m.records_processed = records_fed_;
  m.elapsed_seconds = elapsed;
  m.records_per_second =
      elapsed > 0.0 ? static_cast<double>(records_fed_) / elapsed : 0.0;
  m.shards = config_.shards;

  auto& hosts = result.verdicts.hosts;
  for (const auto& shard : shards_) {
    m.records_suppressed += shard->suppressed;
    m.queue_high_water.push_back(shard->queue.high_water());
    for (const auto& [id, state] : shard->hosts) {
      m.counter_memory_bytes += state.counter->memory_bytes();
      hosts.push_back(state.verdict);
    }
  }
  std::sort(hosts.begin(), hosts.end(),
            [](const HostVerdict& a, const HostVerdict& b) { return a.host < b.host; });
  for (const HostVerdict& v : hosts) {
    if (v.flagged) ++result.verdicts.hosts_flagged;
    if (v.removed) ++result.verdicts.hosts_removed;
  }
  return result;
}

PipelineResult ContainmentPipeline::run(const PipelineConfig& config,
                                        const std::vector<trace::ConnRecord>& records) {
  ContainmentPipeline pipeline(config);
  pipeline.feed(records);
  return pipeline.finish();
}

}  // namespace worms::fleet
