// Per-host distinct-destination counters for the fleet containment pipeline.
//
// The paper's scheme charges a host one unit per *new unique* destination
// address; everything downstream (flag at f·M, remove at M) consumes only the
// running distinct count.  The pipeline therefore isolates "how distinctness
// is judged" behind this interface with two backends:
//
//   * Exact — a flat open-addressing set (reusing worms::net::AddressTable, the same
//     robin-hood table the scan-level simulator uses).  O(distinct) memory
//     per host, zero error: the reference the approximate backend is judged
//     against.
//   * Hll — a trace::HyperLogLog sketch.  Fixed 2^precision bytes per host
//     regardless of cardinality (~1.04/sqrt(2^p) relative error), the shape
//     production deployments use when "per-host state × fleet size" must stay
//     bounded (cf. hyper-compact estimator literature, arXiv:1602.03153).
//
// add() returns how many new distinct units the observation contributed so
// the shard worker can forward exactly that many counted scans into
// core::ScanCountLimitPolicy — the policy never needs to know which backend
// produced the increments.
//
// Both backends are checkpointable (the fault-tolerance layer serializes
// their full state) and the exact backend can be *degraded* into an HLL
// carrying its tally forward — the overload ladder's memory relief valve.
#pragma once

#include <cstdint>
#include <memory>

#include "net/address_table.hpp"
#include "trace/hyperloglog.hpp"

namespace worms::fleet {

enum class CounterBackend : std::uint8_t { Exact, Hll };

class DistinctCounter {
 public:
  virtual ~DistinctCounter() = default;

  /// Observes one destination.  Returns the number of new distinct
  /// destinations this observation added to the backend's tally: 0 for a
  /// recognized repeat, 1 for a definitely-new address, possibly more for an
  /// approximate backend whose estimate jumped.  Deterministic in the
  /// sequence of observations.
  virtual std::uint32_t add(std::uint32_t destination) = 0;

  /// Current distinct tally (monotone between resets; equals the sum of all
  /// add() return values since the last reset).
  [[nodiscard]] virtual std::uint64_t count() const noexcept = 0;

  /// Containment-cycle reset (paper step 4): forget everything.
  virtual void reset() = 0;

  /// Bytes of state held right now (the PipelineMetrics footprint gauge).
  [[nodiscard]] virtual std::size_t memory_bytes() const noexcept = 0;

  /// Which backend this is — drives checkpoint payload tagging and the
  /// degraded-shard accounting.
  [[nodiscard]] virtual CounterBackend backend() const noexcept = 0;
};

/// Exact backend over worms::net::AddressTable.
class ExactCounter final : public DistinctCounter {
 public:
  std::uint32_t add(std::uint32_t destination) override {
    return seen_.insert(worms::net::Ipv4Address(destination), 0) ? 1u : 0u;
  }
  [[nodiscard]] std::uint64_t count() const noexcept override { return seen_.size(); }
  void reset() override { seen_ = worms::net::AddressTable(16); }
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return sizeof(*this) + seen_.capacity() * 8;  // 8 bytes per open-addressing slot
  }
  [[nodiscard]] CounterBackend backend() const noexcept override {
    return CounterBackend::Exact;
  }

  /// The underlying set — checkpoint serialization and exact→HLL degradation.
  [[nodiscard]] const worms::net::AddressTable& table() const noexcept { return seen_; }

 private:
  worms::net::AddressTable seen_{16};
};

/// Approximate backend over trace::HyperLogLog.  The reported count is the
/// floored sketch estimate, surfaced as increments: an observation yields
/// max(0, floor(estimate) - reported) new units, so the policy-side count
/// tracks the estimate while staying integer-monotone.
class HllCounter final : public DistinctCounter {
 public:
  explicit HllCounter(int precision) : sketch_(precision), precision_(precision) {}

  /// Checkpoint restore: resume from a serialized sketch and reported tally.
  HllCounter(trace::HyperLogLog sketch, std::uint64_t reported)
      : sketch_(std::move(sketch)), precision_(sketch_.precision()), reported_(reported) {}

  /// Overload degradation: absorb an exact counter's set, carrying its exact
  /// tally forward as the reported baseline so the host's spent budget is
  /// neither refunded nor double-charged by the switch.
  HllCounter(int precision, const worms::net::AddressTable& seen, std::uint64_t reported)
      : sketch_(precision), precision_(precision), reported_(reported) {
    seen.for_each([this](worms::net::Ipv4Address addr, std::uint32_t) { sketch_.add(addr.value()); });
  }

  std::uint32_t add(std::uint32_t destination) override {
    sketch_.add(destination);
    const auto estimate = static_cast<std::uint64_t>(sketch_.estimate());
    if (estimate <= reported_) return 0;
    const std::uint64_t delta = estimate - reported_;
    reported_ = estimate;
    return static_cast<std::uint32_t>(delta);
  }
  [[nodiscard]] std::uint64_t count() const noexcept override { return reported_; }
  void reset() override {
    sketch_ = trace::HyperLogLog(precision_);
    reported_ = 0;
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return sizeof(*this) + sketch_.register_count();
  }
  [[nodiscard]] CounterBackend backend() const noexcept override { return CounterBackend::Hll; }

  /// The underlying sketch — checkpoint serialization.
  [[nodiscard]] const trace::HyperLogLog& sketch() const noexcept { return sketch_; }

 private:
  trace::HyperLogLog sketch_;
  int precision_;
  std::uint64_t reported_ = 0;
};

/// Factory the pipeline config maps onto.  `hll_precision` is ignored by the
/// exact backend.
[[nodiscard]] std::unique_ptr<DistinctCounter> make_distinct_counter(CounterBackend backend,
                                                                     int hll_precision);

/// "exact" / "hll" — the wormctl --counter spelling.
[[nodiscard]] const char* to_string(CounterBackend backend) noexcept;

}  // namespace worms::fleet
