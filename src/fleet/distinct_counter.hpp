// Per-host distinct-destination counters for the fleet containment pipeline.
//
// The paper's scheme charges a host one unit per *new unique* destination
// address; everything downstream (flag at f·M, remove at M) consumes only the
// running distinct count.  The pipeline therefore isolates "how distinctness
// is judged" behind this interface with two backends:
//
//   * Exact — a flat open-addressing set (reusing worms::net::AddressTable, the same
//     robin-hood table the scan-level simulator uses).  O(distinct) memory
//     per host, zero error: the reference the approximate backend is judged
//     against.
//   * Hll — a trace::HyperLogLog sketch.  Fixed 2^precision bytes per host
//     regardless of cardinality (~1.04/sqrt(2^p) relative error), the shape
//     production deployments use when "per-host state × fleet size" must stay
//     bounded (cf. hyper-compact estimator literature, arXiv:1602.03153).
//   * Compact — a seeded virtual slice of a fleet::SharedSketchPool bank
//     (DESIGN.md §13): a few *bits* per host amortized over a shared
//     register file, with cross-host noise cancelled by the pool's
//     bank-level estimate.  The tens-of-millions-of-hosts shape.
//
// add() returns how many new distinct units the observation contributed so
// the shard worker can forward exactly that many counted scans into
// core::ScanCountLimitPolicy — the policy never needs to know which backend
// produced the increments.
//
// All backends are checkpointable (the fault-tolerance layer serializes
// their full state) and degrade one rung at a time — exact → HLL → compact —
// each switch carrying the tally forward as the new baseline so a host's
// spent budget is neither refunded nor double-charged at the instant of the
// switch.  The overload ladder walks the same rungs as its memory relief
// valve.
#pragma once

#include <cstdint>
#include <memory>

#include "fleet/shared_sketch_pool.hpp"
#include "net/address_table.hpp"
#include "trace/hyperloglog.hpp"

namespace worms::fleet {

enum class CounterBackend : std::uint8_t { Exact, Hll, Compact };

class DistinctCounter {
 public:
  virtual ~DistinctCounter() = default;

  /// Observes one destination.  Returns the number of new distinct
  /// destinations this observation added to the backend's tally: 0 for a
  /// recognized repeat, 1 for a definitely-new address, possibly more for an
  /// approximate backend whose estimate jumped.  Deterministic in the
  /// sequence of observations.
  virtual std::uint32_t add(std::uint32_t destination) = 0;

  /// Current distinct tally (monotone between resets; equals the sum of all
  /// add() return values since the last reset).
  [[nodiscard]] virtual std::uint64_t count() const noexcept = 0;

  /// Containment-cycle reset (paper step 4): forget everything.
  virtual void reset() = 0;

  /// Bytes of state held right now (the PipelineMetrics footprint gauge).
  [[nodiscard]] virtual std::size_t memory_bytes() const noexcept = 0;

  /// Which backend this is — drives checkpoint payload tagging and the
  /// degraded-shard accounting.
  [[nodiscard]] virtual CounterBackend backend() const noexcept = 0;
};

/// Exact backend over worms::net::AddressTable.
class ExactCounter final : public DistinctCounter {
 public:
  std::uint32_t add(std::uint32_t destination) override {
    return seen_.insert(worms::net::Ipv4Address(destination), 0) ? 1u : 0u;
  }
  [[nodiscard]] std::uint64_t count() const noexcept override { return seen_.size(); }
  void reset() override { seen_ = worms::net::AddressTable(16); }
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return sizeof(*this) + seen_.memory_bytes();
  }
  [[nodiscard]] CounterBackend backend() const noexcept override {
    return CounterBackend::Exact;
  }

  /// The underlying set — checkpoint serialization and exact→HLL degradation.
  [[nodiscard]] const worms::net::AddressTable& table() const noexcept { return seen_; }

 private:
  worms::net::AddressTable seen_{16};
};

/// Approximate backend over trace::HyperLogLog.  The reported count is the
/// floored sketch estimate, surfaced as increments: an observation yields
/// max(0, floor(estimate) - reported) new units, so the policy-side count
/// tracks the estimate while staying integer-monotone.
class HllCounter final : public DistinctCounter {
 public:
  explicit HllCounter(int precision) : sketch_(precision), precision_(precision) {}

  /// Checkpoint restore: resume from a serialized sketch and reported tally.
  HllCounter(trace::HyperLogLog sketch, std::uint64_t reported)
      : sketch_(std::move(sketch)), precision_(sketch_.precision()), reported_(reported) {}

  /// Overload degradation: absorb an exact counter's set, carrying its exact
  /// tally forward as the reported baseline so the host's spent budget is
  /// neither refunded nor double-charged by the switch.
  HllCounter(int precision, const worms::net::AddressTable& seen, std::uint64_t reported)
      : sketch_(precision), precision_(precision), reported_(reported) {
    seen.for_each([this](worms::net::Ipv4Address addr, std::uint32_t) { sketch_.add(addr.value()); });
  }

  std::uint32_t add(std::uint32_t destination) override {
    sketch_.add(destination);
    const auto estimate = static_cast<std::uint64_t>(sketch_.estimate());
    if (estimate <= reported_) return 0;
    const std::uint64_t delta = estimate - reported_;
    reported_ = estimate;
    return static_cast<std::uint32_t>(delta);
  }
  [[nodiscard]] std::uint64_t count() const noexcept override { return reported_; }
  void reset() override {
    sketch_ = trace::HyperLogLog(precision_);
    reported_ = 0;
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return sizeof(*this) + sketch_.register_count();
  }
  [[nodiscard]] CounterBackend backend() const noexcept override { return CounterBackend::Hll; }

  /// The underlying sketch — checkpoint serialization.
  [[nodiscard]] const trace::HyperLogLog& sketch() const noexcept { return sketch_; }

 private:
  trace::HyperLogLog sketch_;
  int precision_;
  std::uint64_t reported_ = 0;
};

/// Compact backend: a virtual slice of a shared SketchBank.  The counter
/// itself holds only (epoch, reported tally, anchor) — the registers live in
/// the bank, shared with every other host in the bucket.
///
/// The reported count is an anchored ratchet over the pool's noise-cancelled
/// estimate: at creation (and at every reset / backend switch) the counter
/// records `anchor = baseline − floor(n̂_now)`, cancelling whatever estimate
/// the slice already carries, and thereafter reports
/// max(reported, floor(n̂) + anchor).  A cycle reset bumps the epoch, which
/// reseeds the slice (fresh registers to ratchet over) rather than erasing
/// shared state other hosts still depend on.
class CompactCounter final : public DistinctCounter {
 public:
  /// Fresh counter for `host`: anchors at a zero baseline against the
  /// slice's current noise.
  CompactCounter(SketchBank& bank, std::uint32_t host) : bank_(&bank), host_(host) {
    bank_->attach_host();
    rebase(0);
  }

  /// Degrade from exact: re-adds the exact set into the slice (so future
  /// repeats of those destinations tend to land on already-raised
  /// registers), then anchors at the exact tally.
  CompactCounter(SketchBank& bank, std::uint32_t host, const worms::net::AddressTable& seen,
                 std::uint64_t baseline)
      : bank_(&bank), host_(host) {
    bank_->attach_host();
    const std::uint64_t seed = compact_slice_seed(host_, epoch_);
    seen.for_each([&](worms::net::Ipv4Address addr, std::uint32_t) {
      bank_->add(seed, addr.value());
    });
    rebase(baseline);
  }

  /// Degrade from HLL: the sketch cannot be replayed into the slice, so the
  /// tally carries over as the baseline with an empty slice behind it —
  /// re-observing destinations seen before the switch may charge again
  /// (conservative: over-counting never un-flags a worm).
  CompactCounter(SketchBank& bank, std::uint32_t host, std::uint64_t baseline)
      : bank_(&bank), host_(host) {
    bank_->attach_host();
    rebase(baseline);
  }

  /// Checkpoint restore: exact internal state, slice re-derived from
  /// (host, epoch).
  CompactCounter(SketchBank& bank, std::uint32_t host, std::uint64_t epoch,
                 std::uint64_t reported, std::int64_t anchor)
      : bank_(&bank), host_(host), epoch_(epoch), reported_(reported), anchor_(anchor) {
    bank_->attach_host();
  }

  ~CompactCounter() override { bank_->detach_host(); }
  CompactCounter(const CompactCounter&) = delete;
  CompactCounter& operator=(const CompactCounter&) = delete;

  std::uint32_t add(std::uint32_t destination) override {
    bank_->add(compact_slice_seed(host_, epoch_), destination);
    const std::uint64_t target = current_target();
    if (target <= reported_) return 0;
    const std::uint64_t delta = target - reported_;
    reported_ = target;
    return static_cast<std::uint32_t>(delta);
  }
  [[nodiscard]] std::uint64_t count() const noexcept override { return reported_; }
  void reset() override {
    ++epoch_;  // fresh slice; the old one's registers stay behind as bank noise
    rebase(0);
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return sizeof(*this) + bank_->amortized_bytes();
  }
  [[nodiscard]] CounterBackend backend() const noexcept override {
    return CounterBackend::Compact;
  }

  /// Checkpoint codec hooks (the slice itself lives in the bank snapshot).
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::int64_t anchor() const noexcept { return anchor_; }

 private:
  [[nodiscard]] std::uint64_t current_target() const noexcept {
    const auto estimate = static_cast<std::int64_t>(
        bank_->host_estimate(compact_slice_seed(host_, epoch_)));
    const std::int64_t target = estimate + anchor_;
    return target > 0 ? static_cast<std::uint64_t>(target) : 0;
  }
  /// Re-anchors so count() == baseline at this instant.
  void rebase(std::uint64_t baseline) noexcept {
    const auto estimate = static_cast<std::int64_t>(
        bank_->host_estimate(compact_slice_seed(host_, epoch_)));
    anchor_ = static_cast<std::int64_t>(baseline) - estimate;
    reported_ = baseline;
  }

  SketchBank* bank_;
  std::uint32_t host_;
  std::uint64_t epoch_ = 0;
  std::uint64_t reported_ = 0;
  std::int64_t anchor_ = 0;
};

/// Factory the pipeline config maps onto.  `hll_precision` is ignored by the
/// exact backend.  The compact backend needs a bank to live in, so it is
/// constructed directly (see ContainmentPipeline's shard counter factory);
/// passing it here throws.
[[nodiscard]] std::unique_ptr<DistinctCounter> make_distinct_counter(CounterBackend backend,
                                                                     int hll_precision);

/// "exact" / "hll" / "compact" — the wormctl --counter spelling.
[[nodiscard]] const char* to_string(CounterBackend backend) noexcept;

}  // namespace worms::fleet
