#include "fleet/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "support/check.hpp"

namespace worms::fleet {

void BinaryWriter::put_f64(double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  put_u64(bits);
}

std::uint8_t BinaryReader::get_u8() {
  require(1);
  return static_cast<std::uint8_t>(data_[offset_++]);
}

double BinaryReader::get_f64() { return std::bit_cast<double>(get_u64()); }

void BinaryReader::get_bytes(void* out, std::size_t size) {
  require(size);
  std::memcpy(out, data_.data() + offset_, size);
  offset_ += size;
}

void BinaryReader::require(std::size_t bytes) const {
  WORMS_EXPECTS(offset_ + bytes <= data_.size() && "truncated snapshot");
}

std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

void write_snapshot_file(const std::string& path, std::string_view payload) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    WORMS_EXPECTS(out.good() && "cannot open snapshot temp file");
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    const std::uint64_t checksum = fnv1a64(payload);
    BinaryWriter trailer;
    trailer.put_u64(checksum);
    out.write(trailer.buffer().data(), static_cast<std::streamsize>(trailer.buffer().size()));
    out.flush();
    WORMS_ENSURES(out.good() && "snapshot write failed");
  }
  // Atomic publish: a crash before this rename leaves the previous snapshot
  // untouched; after it, the new one is complete (checksum included).
  WORMS_ENSURES(std::rename(tmp.c_str(), path.c_str()) == 0 && "snapshot rename failed");
}

std::string read_snapshot_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  WORMS_EXPECTS(in.good() && "cannot open snapshot file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string blob = std::move(buffer).str();
  WORMS_EXPECTS(blob.size() >= 8 && "snapshot shorter than its checksum trailer");
  const std::string_view payload(blob.data(), blob.size() - 8);
  BinaryReader trailer(std::string_view(blob).substr(blob.size() - 8));
  const std::uint64_t stored = trailer.get_u64();
  WORMS_EXPECTS(stored == fnv1a64(payload) && "snapshot checksum mismatch");
  blob.resize(blob.size() - 8);
  return blob;
}

void encode_counter(BinaryWriter& out, const DistinctCounter& counter) {
  out.put_u8(static_cast<std::uint8_t>(counter.backend()));
  switch (counter.backend()) {
    case CounterBackend::Exact: {
      const auto& exact = static_cast<const ExactCounter&>(counter);
      out.put_u64(exact.table().size());
      exact.table().for_each(
          [&out](worms::net::Ipv4Address addr, std::uint32_t) { out.put_u32(addr.value()); });
      break;
    }
    case CounterBackend::Hll: {
      const auto& hll = static_cast<const HllCounter&>(counter);
      const trace::HyperLogLog& sketch = hll.sketch();
      out.put_u8(static_cast<std::uint8_t>(sketch.precision()));
      out.put_u64(hll.count());
      out.put_f64(sketch.inverse_sum());
      out.put_u64(sketch.zero_register_count());
      out.put_u64(sketch.register_count());
      out.put_bytes(sketch.registers().data(), sketch.registers().size());
      break;
    }
    case CounterBackend::Compact: {
      const auto& compact = static_cast<const CompactCounter&>(counter);
      out.put_u64(compact.epoch());
      out.put_u64(compact.count());
      out.put_u64(static_cast<std::uint64_t>(compact.anchor()));
      break;
    }
  }
}

std::unique_ptr<DistinctCounter> decode_counter(BinaryReader& in,
                                                const CompactDecodeContext* compact) {
  const auto tag = in.get_u8();
  WORMS_EXPECTS(tag <= 2 && "unknown counter backend tag in snapshot");
  if (static_cast<CounterBackend>(tag) == CounterBackend::Compact) {
    WORMS_EXPECTS(compact != nullptr && compact->pool != nullptr &&
                  "compact counter in snapshot but no shared pool to bind it to");
    const std::uint64_t epoch = in.get_u64();
    const std::uint64_t reported = in.get_u64();
    const auto anchor = static_cast<std::int64_t>(in.get_u64());
    // The anchor offsets a floored estimate; a magnitude beyond ±2^48 cannot
    // arise from any real run and marks a corrupt offset.
    WORMS_EXPECTS(anchor <= (std::int64_t{1} << 48) && anchor >= -(std::int64_t{1} << 48) &&
                  "compact counter anchor out of range in snapshot");
    SketchBank& bank = compact->pool->bank_for(compact_bank_of(compact->host));
    return std::make_unique<CompactCounter>(bank, compact->host, epoch, reported, anchor);
  }
  if (static_cast<CounterBackend>(tag) == CounterBackend::Exact) {
    auto counter = std::make_unique<ExactCounter>();
    const std::uint64_t n = in.get_u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint32_t inserted = counter->add(in.get_u32());
      WORMS_EXPECTS(inserted == 1 && "duplicate address in exact-counter snapshot");
    }
    return counter;
  }
  const int precision = in.get_u8();
  const std::uint64_t reported = in.get_u64();
  const double inverse_sum = in.get_f64();
  const std::uint64_t zero_registers = in.get_u64();
  const std::uint64_t register_count = in.get_u64();
  WORMS_EXPECTS(precision >= 4 && precision <= 16);
  WORMS_EXPECTS(register_count == (std::uint64_t{1} << precision));
  std::vector<std::uint8_t> registers(register_count);
  in.get_bytes(registers.data(), registers.size());
  return std::make_unique<HllCounter>(
      trace::HyperLogLog::restore(precision, std::move(registers), inverse_sum,
                                  static_cast<std::size_t>(zero_registers)),
      reported);
}

}  // namespace worms::fleet
