#include "fleet/shared_sketch_pool.hpp"

#include <bit>
#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace worms::fleet {

namespace {

double alpha_for(std::size_t m) noexcept {
  switch (m) {
    case 16: return 0.673;
    case 32: return 0.697;
    case 64: return 0.709;
    default: return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}

std::uint64_t hash64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return support::splitmix64(s);
}

/// Raw-vs-linear-counting estimate shared by the slice and bank paths.
double hll_estimate(std::size_t m, double inverse_sum, std::uint64_t zeros) noexcept {
  const double md = static_cast<double>(m);
  const double raw = alpha_for(m) * md * md / inverse_sum;
  if (raw <= 2.5 * md && zeros != 0) {
    return md * std::log(md / static_cast<double>(zeros));
  }
  return raw;
}

/// Slice addressing derived from the slice seed: a double-hashed arithmetic
/// walk base + j·step through the bank (step odd, bank size a power of two,
/// so the s probed registers are distinct), plus an independent value-hash
/// seed so two hosts sharing a register disagree on which of their items
/// land there.
struct SliceGeometry {
  std::uint32_t base;
  std::uint32_t step;
  std::uint64_t value_seed;
};

SliceGeometry slice_geometry(std::uint64_t slice_seed, std::uint32_t mask) noexcept {
  std::uint64_t s = slice_seed;
  const std::uint64_t a = support::splitmix64(s);
  const std::uint64_t b = support::splitmix64(s);
  return {static_cast<std::uint32_t>(a) & mask,
          (static_cast<std::uint32_t>(a >> 32) | 1u), b};
}

/// Register rank of one hashed value: leading-zero count of the low 32 hash
/// bits, 1-based; 33 for an all-zero remainder.  32 bits of rank entropy caps
/// the per-register scale around 2^32 — far beyond any per-host cardinality
/// the containment policy cares about.
std::uint8_t rank_of(std::uint32_t bits) noexcept {
  return bits == 0 ? 33 : static_cast<std::uint8_t>(std::countl_zero(bits) + 1);
}

}  // namespace

std::uint32_t CompactPoolConfig::registers_per_bank() const {
  const std::uint64_t total_bytes = bits_per_host * expected_hosts / 8;
  std::uint64_t per_bank = total_bytes / kCompactBanks;
  if (per_bank < 2) per_bank = 2;
  return static_cast<std::uint32_t>(std::bit_ceil(per_bank));
}

void CompactPoolConfig::validate() const {
  WORMS_EXPECTS(bits_per_host >= 1 && bits_per_host <= 64 &&
                "compact bits-per-host must be in [1, 64]");
  WORMS_EXPECTS(virtual_registers >= 8 && virtual_registers <= 4096 &&
                "compact virtual-registers must be in [8, 4096]");
  WORMS_EXPECTS(expected_hosts >= 1024 && "compact expected-hosts must be >= 1024");
  const std::uint64_t m = registers_per_bank();
  WORMS_EXPECTS(m >= 2 * static_cast<std::uint64_t>(virtual_registers) &&
                "compact register budget too small: need bank registers >= 2x "
                "virtual-registers (raise --compact-bits-per-host or "
                "--compact-expected-hosts, or lower --compact-virtual-registers)");
  WORMS_EXPECTS(m <= (1u << 26) && "compact bank register count out of range");
}

SketchBank::SketchBank(std::uint32_t bank_index, const CompactPoolConfig& config)
    : bank_index_(bank_index), slice_width_(config.virtual_registers) {
  const std::uint32_t m = config.registers_per_bank();
  mask_ = m - 1;
  registers_.assign(m, 0);
  inverse_sum_ = static_cast<double>(m);  // every register holds 2^-0
  zero_registers_ = m;
}

void SketchBank::add(std::uint64_t slice_seed, std::uint64_t value) noexcept {
  const SliceGeometry geo = slice_geometry(slice_seed, mask_);
  const std::uint64_t h = hash64(value ^ geo.value_seed);
  // Multiply-shift range reduction of the high hash bits picks the virtual
  // register; the low bits supply the rank.
  const auto j = static_cast<std::uint32_t>(((h >> 32) * slice_width_) >> 32);
  const std::uint32_t idx = (geo.base + j * geo.step) & mask_;
  const std::uint8_t rank = rank_of(static_cast<std::uint32_t>(h));
  std::uint8_t& reg = registers_[idx];
  if (rank <= reg) return;
  inverse_sum_ +=
      std::ldexp(1.0, -static_cast<int>(rank)) - std::ldexp(1.0, -static_cast<int>(reg));
  if (reg == 0) --zero_registers_;
  reg = rank;
}

double SketchBank::slice_estimate(std::uint64_t slice_seed) const noexcept {
  const SliceGeometry geo = slice_geometry(slice_seed, mask_);
  double inverse_sum = 0.0;
  std::uint64_t zeros = 0;
  for (std::uint32_t j = 0; j < slice_width_; ++j) {
    const std::uint8_t reg = registers_[(geo.base + j * geo.step) & mask_];
    inverse_sum += std::ldexp(1.0, -static_cast<int>(reg));
    if (reg == 0) ++zeros;
  }
  return hll_estimate(slice_width_, inverse_sum, zeros);
}

double SketchBank::bank_estimate() const noexcept {
  return hll_estimate(registers_.size(), inverse_sum_, zero_registers_);
}

double SketchBank::host_estimate(std::uint64_t slice_seed) const noexcept {
  const double m = static_cast<double>(registers_.size());
  const double s = static_cast<double>(slice_width_);
  const double estimate =
      (m * slice_estimate(slice_seed) - s * bank_estimate()) / (m - s);
  return estimate > 0.0 ? estimate : 0.0;
}

void SketchBank::restore(const std::vector<std::uint8_t>& registers, double inverse_sum,
                         std::uint64_t zero_registers) {
  WORMS_EXPECTS(registers.size() == registers_.size() &&
                "compact bank register count differs from the pool config");
  double recomputed = 0.0;
  std::uint64_t zeros = 0;
  for (const std::uint8_t r : registers) {
    WORMS_EXPECTS(r <= 33 && "compact bank register rank out of range");
    recomputed += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zeros;
  }
  WORMS_EXPECTS(zeros == zero_registers && "compact bank zero-register count mismatch");
  // The stored sum must agree with the registers up to accumulation-order
  // rounding; anything further apart is corruption the checksum missed.
  WORMS_EXPECTS(std::abs(recomputed - inverse_sum) <=
                    1e-9 * static_cast<double>(registers.size()) &&
                "compact bank inverse power sum inconsistent with registers");
  registers_ = registers;
  inverse_sum_ = inverse_sum;
  zero_registers_ = zero_registers;
}

SketchBank& SharedSketchPool::bank_for(std::uint32_t bank_index) {
  WORMS_EXPECTS(bank_index < kCompactBanks);
  auto& slot = banks_[bank_index];
  if (!slot) slot = std::make_unique<SketchBank>(bank_index, config_);
  return *slot;
}

SketchBank* SharedSketchPool::find_bank(std::uint32_t bank_index) noexcept {
  const auto it = banks_.find(bank_index);
  return it == banks_.end() ? nullptr : it->second.get();
}

std::size_t SharedSketchPool::memory_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& [index, bank] : banks_) total += bank->memory_bytes();
  return total;
}

std::uint64_t compact_slice_seed(std::uint32_t host, std::uint64_t epoch) noexcept {
  return support::derive_seed(support::derive_seed(0xC03C75EEDull, host), epoch);
}

}  // namespace worms::fleet
