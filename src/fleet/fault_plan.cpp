#include "fleet/fault_plan.hpp"

#include <charconv>
#include <string_view>

#include "support/check.hpp"

namespace worms::fleet {

namespace {

[[noreturn]] void bad_spec(const std::string& clause, const char* why) {
  throw support::PreconditionError("bad --fault-plan clause '" + clause + "': " + why);
}

template <typename T>
T parse_number(std::string_view text, const std::string& clause, const char* field) {
  T value{};
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    bad_spec(clause, field);
  }
  return value;
}

/// Splits "SHARD@BATCHES" (the shared grammar of kill/degrade/stall clauses).
FaultPlan::WorkerFault parse_worker_fault(std::string_view body, const std::string& clause) {
  const auto at = body.find('@');
  if (at == std::string_view::npos) bad_spec(clause, "expected SHARD@BATCHES");
  FaultPlan::WorkerFault fault;
  fault.shard = parse_number<unsigned>(body.substr(0, at), clause, "SHARD must be a non-negative integer");
  fault.after_batches =
      parse_number<std::uint64_t>(body.substr(at + 1), clause, "BATCHES must be a non-negative integer");
  return fault;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t semi = spec.find(';', pos);
    const std::string clause =
        spec.substr(pos, semi == std::string::npos ? std::string::npos : semi - pos);
    pos = semi == std::string::npos ? spec.size() + 1 : semi + 1;
    if (clause.empty()) continue;

    const std::size_t colon = clause.find(':');
    if (colon == std::string::npos) bad_spec(clause, "expected KIND:ARGS");
    const std::string_view kind = std::string_view(clause).substr(0, colon);
    const std::string_view body = std::string_view(clause).substr(colon + 1);

    if (kind == "kill") {
      plan.kills.push_back(parse_worker_fault(body, clause));
    } else if (kind == "degrade") {
      plan.degrades.push_back(parse_worker_fault(body, clause));
    } else if (kind == "stall") {
      const auto comma = body.find(',');
      if (comma == std::string_view::npos) bad_spec(clause, "expected SHARD@BATCHES,SECONDS");
      StallFault stall;
      const WorkerFault at = parse_worker_fault(body.substr(0, comma), clause);
      stall.shard = at.shard;
      stall.after_batches = at.after_batches;
      stall.seconds = parse_number<double>(body.substr(comma + 1), clause,
                                           "SECONDS must be a number");
      if (!(stall.seconds >= 0.0)) bad_spec(clause, "SECONDS must be >= 0");
      plan.stalls.push_back(stall);
    } else if (kind == "corrupt") {
      plan.corrupt_records.push_back(
          parse_number<std::uint64_t>(body, clause, "INDEX must be a non-negative integer"));
    } else if (kind == "netkill") {
      plan.net_kills.push_back(
          parse_number<std::uint64_t>(body, clause, "FRAMES must be a non-negative integer"));
    } else if (kind == "netdrop") {
      plan.net_drops.push_back(
          parse_number<std::uint64_t>(body, clause, "FRAMES must be a non-negative integer"));
    } else if (kind == "netcorrupt") {
      plan.net_corrupt_frames.push_back(
          parse_number<std::uint64_t>(body, clause, "INDEX must be a non-negative integer"));
    } else if (kind == "netstall") {
      const auto comma = body.find(',');
      if (comma == std::string_view::npos) bad_spec(clause, "expected FRAMES,SECONDS");
      NetStallFault stall;
      stall.after_frames = parse_number<std::uint64_t>(
          body.substr(0, comma), clause, "FRAMES must be a non-negative integer");
      stall.seconds = parse_number<double>(body.substr(comma + 1), clause,
                                           "SECONDS must be a number");
      if (!(stall.seconds >= 0.0)) bad_spec(clause, "SECONDS must be >= 0");
      plan.net_stalls.push_back(stall);
    } else if (kind == "seed") {
      plan.seed = parse_number<std::uint64_t>(body, clause, "N must be a non-negative integer");
    } else {
      bad_spec(clause,
               "unknown kind (want kill, degrade, stall, corrupt, netkill, netdrop, "
               "netcorrupt, netstall, or seed)");
    }
  }
  return plan;
}

}  // namespace worms::fleet
