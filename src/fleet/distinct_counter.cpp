#include "fleet/distinct_counter.hpp"

#include "support/check.hpp"

namespace worms::fleet {

std::unique_ptr<DistinctCounter> make_distinct_counter(CounterBackend backend,
                                                       int hll_precision) {
  switch (backend) {
    case CounterBackend::Exact:
      return std::make_unique<ExactCounter>();
    case CounterBackend::Hll:
      return std::make_unique<HllCounter>(hll_precision);
  }
  WORMS_EXPECTS(false && "unknown CounterBackend");
}

const char* to_string(CounterBackend backend) noexcept {
  return backend == CounterBackend::Exact ? "exact" : "hll";
}

}  // namespace worms::fleet
