#include "fleet/distinct_counter.hpp"

#include "support/check.hpp"

namespace worms::fleet {

std::unique_ptr<DistinctCounter> make_distinct_counter(CounterBackend backend,
                                                       int hll_precision) {
  switch (backend) {
    case CounterBackend::Exact:
      return std::make_unique<ExactCounter>();
    case CounterBackend::Hll:
      return std::make_unique<HllCounter>(hll_precision);
    case CounterBackend::Compact:
      WORMS_EXPECTS(false &&
                    "compact counters are bound to a SharedSketchPool bank; "
                    "construct CompactCounter directly");
  }
  WORMS_EXPECTS(false && "unknown CounterBackend");
}

const char* to_string(CounterBackend backend) noexcept {
  switch (backend) {
    case CounterBackend::Exact: return "exact";
    case CounterBackend::Hll: return "hll";
    case CounterBackend::Compact: return "compact";
  }
  return "unknown";
}

}  // namespace worms::fleet
