#include "fleet/worm_injector.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace worms::fleet {

InjectedTrace inject_worm_scans(std::vector<trace::ConnRecord> base,
                                const WormInjectConfig& config) {
  WORMS_EXPECTS(config.infected_hosts >= 1);
  WORMS_EXPECTS(config.scan_rate > 0.0);
  WORMS_EXPECTS(config.start >= 0.0);
  WORMS_EXPECTS(config.failure_fraction >= 0.0 && config.failure_fraction <= 1.0);

  std::uint32_t host_count = config.host_count;
  sim::SimTime end = config.end;
  for (const trace::ConnRecord& r : base) {
    if (config.host_count == 0 && r.source_host >= host_count) host_count = r.source_host + 1;
    if (config.end == 0.0 && r.timestamp > end) end = r.timestamp;
  }
  WORMS_EXPECTS(host_count >= config.infected_hosts);
  WORMS_EXPECTS(end > config.start);

  InjectedTrace out;

  // Ground truth: sample I0 host ids without replacement.
  support::Rng pick(support::derive_seed(config.seed, 0x90'57'5));
  std::unordered_set<std::uint32_t> chosen;
  while (chosen.size() < config.infected_hosts) {
    chosen.insert(static_cast<std::uint32_t>(pick.below(host_count)));
  }
  out.infected_hosts.assign(chosen.begin(), chosen.end());
  std::sort(out.infected_hosts.begin(), out.infected_hosts.end());

  // Each infected host scans on its own Poisson clock with its own stream, so
  // the overlay is independent of I0's iteration order.
  out.records = std::move(base);
  const std::uint64_t outcome_key = support::derive_seed(config.seed, 0xFA11u);
  for (const std::uint32_t host : out.infected_hosts) {
    support::Rng rng = support::Rng::for_stream(config.seed, host);
    sim::SimTime t = config.start;
    std::uint64_t scans = 0;
    while (config.scans_per_host == 0 || scans < config.scans_per_host) {
      t += -std::log(rng.uniform_pos()) / config.scan_rate;
      if (t > end) break;
      const std::uint32_t addr = rng.u32();
      // Scan outcome from a hash of the scan itself, not an RNG draw: the
      // Poisson clock and address sequence stay put for any failure fraction.
      std::uint64_t s = outcome_key ^ (static_cast<std::uint64_t>(host) << 32) ^ addr ^
                        (scans * 0x9E3779B97F4A7C15ull);
      const double u = static_cast<double>(support::splitmix64(s) >> 11) * 0x1.0p-53;
      const std::uint8_t outcome =
          u < config.failure_fraction ? trace::kOutcomeFailure : trace::kOutcomeSuccess;
      out.records.push_back({t, host, worms::net::Ipv4Address(addr), outcome});
      ++scans;
    }
    out.worm_records += scans;
  }

  // Stable on ties: background traffic sorts ahead of the worm overlay at
  // identical timestamps, keeping the merge deterministic.
  std::stable_sort(out.records.begin(), out.records.end(),
                   [](const trace::ConnRecord& a, const trace::ConnRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

}  // namespace worms::fleet
