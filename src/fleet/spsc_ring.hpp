// Bounded lock-free single-producer single-consumer ring.
//
// PR 6's transport for the fleet pipeline (DESIGN.md §10): the ingest thread
// is the only producer and each shard worker the only consumer, so the
// general mutex/condvar BoundedMpscQueue pays for contention that cannot
// happen.  This ring is the classic two-counter SPSC design: the producer
// owns `head`, the consumer owns `tail`, each advances its own counter with
// a release store and reads the other's with an acquire load, and each
// caches the remote counter so the common case (ring neither full nor
// empty) touches no shared cache line at all.
//
// The API deliberately mirrors BoundedMpscQueue — push/try_push,
// pop/pop_wait_for returning optional, close()/drained() end-of-stream,
// size()/high_water()/capacity() gauges — so the pipeline swaps transports
// behind one interface and the fault-tolerance choreography (respawn after
// a worker death, quiesce gates, overload sampling) is unchanged.  Waiting
// is spin-then-sleep rather than condvar parking: queue operations are per
// batch, not per record, and the poll deadline doubles as the fault check
// interval exactly as the queue's timed wait did.
//
// Consumer handoff (a fault-killed worker replaced by a respawn) is safe:
// the dying worker publishes with a release store of its dead flag, the
// ingest thread observes it with an acquire load before submitting the
// replacement, so at most one consumer is ever live and the new one sees
// the old one's ring state.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "support/check.hpp"

namespace worms::fleet {

template <typename T>
class SpscRing {
 public:
  /// `capacity` is the maximum number of queued items (must be >= 1).  Slot
  /// storage rounds up to a power of two; the logical bound stays exact.
  explicit SpscRing(std::size_t capacity) : capacity_(capacity) {
    WORMS_EXPECTS(capacity >= 1);
    std::size_t slots = 1;
    while (slots < capacity) slots <<= 1;
    slots_.resize(slots);
    mask_ = slots - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Blocks (yielding) while the ring is full.  Pushing onto a closed ring
  /// is a precondition violation, as with BoundedMpscQueue.
  void push(T item) {
    while (!try_push(item)) std::this_thread::yield();
  }

  /// Non-blocking push: returns false — leaving `item` untouched — when the
  /// ring is full.  Producer-side only.
  [[nodiscard]] bool try_push(T& item) {
    WORMS_EXPECTS(!closed_.load(std::memory_order_relaxed));
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ >= capacity_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ >= capacity_) return false;
    }
    slots_[head & mask_] = std::move(item);
    head_.store(head + 1, std::memory_order_release);
    const std::size_t depth = static_cast<std::size_t>(head + 1 - cached_tail_);
    if (depth > high_water_.load(std::memory_order_relaxed)) {
      high_water_.store(depth, std::memory_order_relaxed);
    }
    return true;
  }

  /// Blocks until an item is available or the ring is closed *and* drained;
  /// returns nullopt only in the latter case.  Consumer-side only.
  [[nodiscard]] std::optional<T> pop() {
    for (;;) {
      if (auto item = try_pop()) return item;
      if (closed_.load(std::memory_order_acquire)) {
        // One more look with a fresh head: the producer's last push
        // happens-before its close, so a post-close miss means drained.
        if (auto item = try_pop()) return item;
        return std::nullopt;
      }
      std::this_thread::yield();
    }
  }

  /// Like pop(), but gives up after `timeout`.  Returns nullopt on timeout
  /// as well as on closed-and-drained; disambiguate with drained().  Spins
  /// briefly, then sleeps in short slices until the deadline.
  template <class Rep, class Period>
  [[nodiscard]] std::optional<T> pop_wait_for(std::chrono::duration<Rep, Period> timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    unsigned spins = 0;
    for (;;) {
      if (auto item = try_pop()) return item;
      if (closed_.load(std::memory_order_acquire)) {
        if (auto item = try_pop()) return item;
        return std::nullopt;
      }
      if (std::chrono::steady_clock::now() >= deadline) return std::nullopt;
      if (++spins < 64) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
  }

  /// True once the ring is closed and every item has been popped.
  [[nodiscard]] bool drained() const {
    return closed_.load(std::memory_order_acquire) &&
           tail_.load(std::memory_order_acquire) == head_.load(std::memory_order_acquire);
  }

  /// Current occupancy in items — the overload watermarks sample this.
  [[nodiscard]] std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(head - tail);
  }

  /// Marks end-of-stream; idempotent.  The consumer drains what is left.
  void close() { closed_.store(true, std::memory_order_release); }

  /// Largest occupancy ever observed by the producer, in items.
  [[nodiscard]] std::size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  [[nodiscard]] std::optional<T> try_pop() {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return std::nullopt;
    }
    std::optional<T> item(std::move(slots_[tail & mask_]));
    tail_.store(tail + 1, std::memory_order_release);
    return item;
  }

  std::vector<T> slots_;
  std::size_t capacity_;
  std::size_t mask_;

  // Producer-owned line: head plus the producer's stale view of tail.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;
  // Consumer-owned line: tail plus the consumer's stale view of head.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;

  alignas(64) std::atomic<bool> closed_{false};
  std::atomic<std::size_t> high_water_{0};
};

}  // namespace worms::fleet
