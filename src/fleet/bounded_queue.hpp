// Bounded multi-producer single-consumer queue with blocking backpressure.
//
// The fleet pipeline shards connection records by source host: one ingest
// thread pushes fixed-size batches onto one queue per shard worker.  The
// queue is deliberately a classic mutex/condition-variable ring rather than
// a lock-free structure: the pipeline amortizes synchronization by moving
// whole batches (config.batch_size records per push), so queue operations
// are off the per-record hot path and the simple implementation is both
// obviously correct under TSan and fast enough for tens of millions of
// records per second.
//
// Backpressure is blocking-by-construction: push() waits while the queue
// holds `capacity` items, so a slow shard throttles the ingest thread
// instead of growing memory without bound.  close() wakes everyone; pop()
// then drains the remaining items before reporting end-of-stream.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "support/check.hpp"

namespace worms::fleet {

template <typename T>
class BoundedMpscQueue {
 public:
  /// `capacity` is the maximum number of queued items (must be >= 1); a full
  /// queue blocks producers until the consumer catches up.
  explicit BoundedMpscQueue(std::size_t capacity) : capacity_(capacity) {
    WORMS_EXPECTS(capacity >= 1);
  }

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// Blocks while the queue is full.  Pushing onto a closed queue is a
  /// precondition violation (the producer must close only after its last
  /// push).
  void push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    WORMS_EXPECTS(!closed_);
    items_.push_back(std::move(item));
    if (items_.size() > high_water_) high_water_ = items_.size();
    lock.unlock();
    not_empty_.notify_one();
  }

  /// Non-blocking push: returns false — leaving `item` untouched — when the
  /// queue is full, so a producer can observe backpressure (and e.g. check
  /// whether its consumer died) instead of blocking forever.  Pushing onto a
  /// closed queue is a precondition violation, as with push().
  [[nodiscard]] bool try_push(T& item) {
    {
      std::lock_guard lock(mutex_);
      WORMS_EXPECTS(!closed_);
      if (items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed *and* drained;
  /// returns nullopt only in the latter case, so no pushed item is lost.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Like pop(), but waits at most `timeout`.  Returns nullopt on timeout as
  /// well as on closed-and-drained; disambiguate with drained().  This is how
  /// a consumer observes a stalled producer (or a pending shutdown check)
  /// instead of blocking forever.
  template <class Rep, class Period>
  [[nodiscard]] std::optional<T> pop_wait_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock lock(mutex_);
    not_empty_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// True once the queue is closed and every item has been popped — the
  /// end-of-stream condition a pop_wait_for() consumer checks on nullopt.
  [[nodiscard]] bool drained() const {
    std::lock_guard lock(mutex_);
    return closed_ && items_.empty();
  }

  /// Current occupancy in items — the overload watermarks sample this.
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  /// Marks end-of-stream; idempotent.  Waiting consumers drain what is left.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  /// Largest number of items ever queued at once — the backpressure gauge
  /// reported in PipelineMetrics.
  [[nodiscard]] std::size_t high_water() const {
    std::lock_guard lock(mutex_);
    return high_water_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t capacity_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace worms::fleet
