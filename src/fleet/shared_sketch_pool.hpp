// Shared-register sketch pool — the hyper-compact distinct-counter substrate
// (DESIGN.md §13, after the virtual-HLL / register-sharing estimators of
// arXiv:1602.03153).
//
// The exact and HLL backends pay per-host memory (O(distinct) slots or
// 2^precision bytes).  At fleet scale the binding constraint is
// "per-host state × monitored hosts", so this pool inverts the layout: one
// shared bank of byte-wide HLL registers per host *bucket*, with every host
// owning a seeded virtual *slice* of `s` registers scattered through its
// bank by double hashing.  Amortized cost is a few bits per host; the price
// is cross-host noise (other hosts' traffic raises registers in your slice),
// which the estimator cancels:
//
//     E_v = HLL estimate over the host's s slice registers
//     E_b = HLL estimate over the whole m-register bank
//     n̂  = max(0, (m·E_v − s·E_b) / (m − s))
//
// (E_v sees the host's own n items plus a ≈ s/m share of everyone else's;
// E_b sees everything; solving the 2×2 system gives the line above.)
//
// Bank partitioning is the determinism keystone: hosts are bucketed into a
// FIXED kCompactBanks = 1024 banks by host id, and the pipeline routes hosts
// to shards by (host % kCompactBanks) % shards, so every bank's hosts
// colocate on one shard and a bank's contents are a pure function of the
// record stream — independent of the shard count.  Compact verdicts and
// checkpoints are therefore bit-identical for 1, 2, 4, … shards, and a
// snapshot written at one shard count restores at any other (banks rehome by
// bank % new_shards, always landing with their hosts).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace worms::fleet {

/// Fixed host-bucket count.  Also the pipeline's maximum shard count: with
/// routing (host % kCompactBanks) % shards, more shards than banks would
/// leave shards permanently idle.
inline constexpr std::uint32_t kCompactBanks = 1024;

/// Bank index for a host — a pure function of the host id.
[[nodiscard]] constexpr std::uint32_t compact_bank_of(std::uint32_t host) noexcept {
  return host % kCompactBanks;
}

/// Sizing knobs for the shared pool, set once per pipeline.
struct CompactPoolConfig {
  /// Amortized register bits per expected host.  Total register budget is
  /// bits_per_host × expected_hosts bits, split evenly across the banks
  /// (each bank's register count rounds up to a power of two).
  std::uint32_t bits_per_host = 8;
  /// Virtual registers per host slice (the `s` above).  More slices → lower
  /// estimator variance, but a bank must keep m ≥ 2·s.
  std::uint32_t virtual_registers = 128;
  /// Expected monitored-host population the bit budget is amortized over.
  std::uint64_t expected_hosts = 1u << 20;

  /// Registers per bank (power of two).  Throws on out-of-range knobs or a
  /// budget too small for the slice width (m < 2·s).
  [[nodiscard]] std::uint32_t registers_per_bank() const;
  void validate() const;

  friend bool operator==(const CompactPoolConfig&, const CompactPoolConfig&) = default;
};

/// One shared register bank: a flat HLL register file plus the incremental
/// whole-bank state (inverse power sum, zero count) that makes the bank-level
/// estimate O(1).  Slice-level estimates recompute over the s slice registers
/// on demand — deterministic by construction (fixed iteration order, no
/// incremental float state to drift across checkpoint/restore).
class SketchBank {
 public:
  SketchBank(std::uint32_t bank_index, const CompactPoolConfig& config);

  /// Observes `value` into the slice addressed by `slice_seed`.
  void add(std::uint64_t slice_seed, std::uint64_t value) noexcept;

  /// HLL estimate over one host's s slice registers (E_v).
  [[nodiscard]] double slice_estimate(std::uint64_t slice_seed) const noexcept;

  /// HLL estimate over the whole bank (E_b); O(1).
  [[nodiscard]] double bank_estimate() const noexcept;

  /// Noise-cancelled per-host estimate n̂ (clamped at 0).
  [[nodiscard]] double host_estimate(std::uint64_t slice_seed) const noexcept;

  /// Live-counter accounting for amortized memory attribution.
  void attach_host() noexcept { ++attached_hosts_; }
  void detach_host() noexcept { --attached_hosts_; }
  [[nodiscard]] std::uint32_t attached_hosts() const noexcept { return attached_hosts_; }

  /// Whole-bank register bytes (the pool's real footprint)…
  [[nodiscard]] std::size_t memory_bytes() const noexcept { return registers_.size(); }
  /// …and one attached host's share of it (what a counter gauge reports).
  [[nodiscard]] std::size_t amortized_bytes() const noexcept {
    return registers_.size() / (attached_hosts_ == 0 ? 1 : attached_hosts_);
  }

  [[nodiscard]] std::uint32_t bank_index() const noexcept { return bank_index_; }
  [[nodiscard]] std::uint32_t register_count() const noexcept {
    return static_cast<std::uint32_t>(registers_.size());
  }

  /// Checkpoint codec hooks.  The incremental float state round-trips
  /// verbatim (restoring from recomputation could differ in the last ulp and
  /// fork the estimate sequence after resume); restore() validates the
  /// registers against it and throws support::PreconditionError on mismatch.
  [[nodiscard]] const std::vector<std::uint8_t>& registers() const noexcept {
    return registers_;
  }
  [[nodiscard]] double inverse_sum() const noexcept { return inverse_sum_; }
  [[nodiscard]] std::uint64_t zero_registers() const noexcept { return zero_registers_; }
  void restore(const std::vector<std::uint8_t>& registers, double inverse_sum,
               std::uint64_t zero_registers);

 private:
  std::uint32_t bank_index_;
  std::uint32_t slice_width_;              ///< s, from the pool config
  std::uint32_t mask_;                     ///< register_count − 1 (power of two)
  std::vector<std::uint8_t> registers_;    ///< byte-wide HLL ranks
  double inverse_sum_;                     ///< Σ 2^-reg over the whole bank
  std::uint64_t zero_registers_;           ///< bank registers still at 0
  std::uint32_t attached_hosts_ = 0;
};

/// The per-shard pool: banks created lazily as hosts appear, keyed by bank
/// index.  std::map so snapshot iteration is index-ordered without a sort.
class SharedSketchPool {
 public:
  explicit SharedSketchPool(const CompactPoolConfig& config) : config_(config) {
    config_.validate();
  }

  /// The bank for `bank_index`, created on first use.
  [[nodiscard]] SketchBank& bank_for(std::uint32_t bank_index);

  /// Lookup without creation (nullptr when the bank never materialized).
  [[nodiscard]] SketchBank* find_bank(std::uint32_t bank_index) noexcept;

  [[nodiscard]] const CompactPoolConfig& config() const noexcept { return config_; }
  [[nodiscard]] const std::map<std::uint32_t, std::unique_ptr<SketchBank>>& banks()
      const noexcept {
    return banks_;
  }

  /// Total register bytes across materialized banks.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  CompactPoolConfig config_;
  std::map<std::uint32_t, std::unique_ptr<SketchBank>> banks_;
};

/// Slice seed for (host, epoch) — a pure function, identical on every shard
/// layout and across checkpoint/restore.  Cycle resets bump the epoch, which
/// rehomes the host onto a fresh slice (stale contributions stay behind as
/// bank noise the estimator's E_b term cancels).
[[nodiscard]] std::uint64_t compact_slice_seed(std::uint32_t host, std::uint64_t epoch) noexcept;

}  // namespace worms::fleet
