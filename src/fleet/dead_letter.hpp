// Dead-letter quarantine for the fleet containment pipeline.
//
// The paper's containment cycle is weeks long; a monitor that aborts on the
// first malformed record mid-cycle loses every host's scan budget and re-opens
// the epidemic threshold M ≤ 1/p.  Instead of aborting, the pipeline routes
// records it cannot (or must not) count — malformed fields, per-host time
// regressions, exact duplicates — into this bounded channel: per-reason
// counters are always exact, a bounded ring of recent entries supports
// diagnosis, and an optional spill file keeps a line-per-record audit trail
// for offline replay.  Nothing countable is ever silently dropped: a record
// either reaches its shard worker or is accounted for here.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "trace/record.hpp"

namespace worms::obs {
class Registry;
}

namespace worms::fleet {

enum class DeadLetterReason : std::uint8_t {
  Malformed,       ///< unparseable line or non-finite/negative timestamp
  OutOfOrder,      ///< timestamp regressed for its source host
  Duplicate,       ///< identical (timestamp, destination) to the host's previous record
  FrameBadMagic,   ///< wire frame header with wrong magic/version/type bytes
  FrameTruncated,  ///< connection ended mid-frame (short header or payload)
  FrameChecksum,   ///< frame payload failed its FNV-1a-64 checksum
  FrameOversized,  ///< length prefix beyond net::kMaxFramePayload
};

inline constexpr std::size_t kDeadLetterReasonCount = 7;

[[nodiscard]] const char* to_string(DeadLetterReason reason) noexcept;

struct DeadLetterEntry {
  DeadLetterReason reason = DeadLetterReason::Malformed;
  trace::ConnRecord record;      ///< zero-initialized when only text was available
  std::uint64_t stream_index = 0;  ///< feed index (or source line for parser rejects)
  std::string detail;              ///< human-readable diagnostic

  friend bool operator==(const DeadLetterEntry&, const DeadLetterEntry&) = default;
};

/// Per-reason accounting.  Counters are exact regardless of retention;
/// `overflow_dropped` counts entries whose *details* were evicted from the
/// bounded ring (their counters still incremented).
struct DeadLetterStats {
  std::uint64_t malformed = 0;
  std::uint64_t out_of_order = 0;
  std::uint64_t duplicate = 0;
  std::uint64_t frame_bad_magic = 0;
  std::uint64_t frame_truncated = 0;
  std::uint64_t frame_checksum = 0;
  std::uint64_t frame_oversized = 0;
  std::uint64_t overflow_dropped = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return malformed + out_of_order + duplicate + frame_bad_magic + frame_truncated +
           frame_checksum + frame_oversized;
  }

  friend bool operator==(const DeadLetterStats&, const DeadLetterStats&) = default;
};

/// Thread-safe bounded dead-letter sink shared by the ingest thread and every
/// shard worker.  All paths are off the record hot loop — only rejected
/// records pay the mutex.
class DeadLetterChannel {
 public:
  struct Config {
    std::size_t capacity = 1024;  ///< retained entries; older ones are evicted
    std::string spill_path;       ///< non-empty: append every entry as CSV
    /// Optional observability sink: per-reason `fleet_dead_letters_total`
    /// counters mirror the exact stats() accounting (DESIGN.md §8).
    obs::Registry* metrics = nullptr;
  };

  explicit DeadLetterChannel(const Config& config);

  DeadLetterChannel(const DeadLetterChannel&) = delete;
  DeadLetterChannel& operator=(const DeadLetterChannel&) = delete;

  /// Records one rejected record: bumps the reason counter, retains the entry
  /// (evicting the oldest beyond capacity), and spills it if configured.
  void report(DeadLetterEntry entry);

  /// Seeds the counters from a checkpoint so a restored pipeline's accounting
  /// continues where the snapshot left off.
  void preload(const DeadLetterStats& stats);

  [[nodiscard]] DeadLetterStats stats() const;

  /// Snapshot of the retained (most recent) entries, oldest first.
  [[nodiscard]] std::vector<DeadLetterEntry> entries() const;

 private:
  mutable std::mutex mutex_;
  Config config_;
  DeadLetterStats stats_;
  std::deque<DeadLetterEntry> retained_;
  std::ofstream spill_;
  /// Per-reason counters (index = DeadLetterReason) plus overflow; null when
  /// the channel is not instrumented.
  std::array<obs::Counter*, kDeadLetterReasonCount> reason_counters_{};
  obs::Counter* overflow_counter_ = nullptr;
};

}  // namespace worms::fleet
