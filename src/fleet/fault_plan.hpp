// Deterministic fault-injection plan for the fleet containment pipeline.
//
// Recovery code that only runs when production breaks is recovery code that
// has never run.  A FaultPlan scripts the breakage: kill shard worker k after
// it has processed n batches (the thread returns mid-stream, exactly like a
// crash between batches), corrupt the i-th ingested record (deterministically
// mangled from `seed` so reruns reproduce it), stall shard j for t seconds
// (sustained backpressure, driving the overload watermarks), or force shard j
// to degrade its counters exact→HLL.  The pipeline honours the plan inline —
// every fault fires at a position in the record stream, not at a wall-clock
// time — so tests can assert exact outcomes: verdicts unchanged after a
// worker kill, dead-letter counters matching the corruption list, no
// deadlock under stall.
//
// wormctl accepts the same plans via `contain --fault-plan SPEC` where SPEC
// is semicolon-separated clauses:
//
//   kill:SHARD@BATCHES      stall:SHARD@BATCHES,SECONDS
//   degrade:SHARD@BATCHES   corrupt:INDEX        seed:N
//
// e.g. --fault-plan "kill:0@10;corrupt:500;corrupt:501;stall:1@5,0.25".
//
// The fleet/net layer adds network clauses, honoured by `wormctl serve` and
// `wormctl ingest` (the in-process pipeline ignores them):
//
//   netkill:FRAMES            serve: _Exit(9) after receiving FRAMES frames —
//                             a hard primary crash for failover tests
//   netdrop:FRAMES            serve: close every live ingest connection once
//                             FRAMES frames have arrived (clients reconnect)
//   netcorrupt:INDEX          ingest: flip a payload byte of the INDEX-th
//                             sent frame AFTER checksumming (receiver must
//                             dead-letter it as frame-checksum)
//   netstall:FRAMES,SECONDS   serve: pause the receiving reader SECONDS after
//                             FRAMES frames (backpressure without data loss)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace worms::fleet {

struct FaultPlan {
  /// Kill (or degrade) a shard's worker after it completes `after_batches`
  /// record batches.  A kill fires once: the pipeline respawns the worker on
  /// demand and the respawn is immune.
  struct WorkerFault {
    unsigned shard = 0;
    std::uint64_t after_batches = 0;

    friend bool operator==(const WorkerFault&, const WorkerFault&) = default;
  };

  /// Stall a shard's worker for `seconds` after `after_batches` batches —
  /// sustained backpressure without killing anything.
  struct StallFault {
    unsigned shard = 0;
    std::uint64_t after_batches = 0;
    double seconds = 0.0;

    friend bool operator==(const StallFault&, const StallFault&) = default;
  };

  /// Pause a serve node's frame reader for `seconds` once `after_frames`
  /// frames have been received (network-side analogue of StallFault).
  struct NetStallFault {
    std::uint64_t after_frames = 0;
    double seconds = 0.0;

    friend bool operator==(const NetStallFault&, const NetStallFault&) = default;
  };

  std::vector<WorkerFault> kills;
  std::vector<WorkerFault> degrades;
  std::vector<StallFault> stalls;
  /// Stream indices (0-based feed order) of records to corrupt at ingest.
  std::vector<std::uint64_t> corrupt_records;
  /// serve: frame counts after which the whole process _Exit(9)s (hard crash).
  std::vector<std::uint64_t> net_kills;
  /// serve: frame counts after which every live ingest connection is closed.
  std::vector<std::uint64_t> net_drops;
  /// ingest: 0-based indices of sent frames whose payload gets one byte
  /// flipped after checksumming (forcing a frame-checksum dead letter).
  std::vector<std::uint64_t> net_corrupt_frames;
  /// serve: reader stalls (frames received, seconds).
  std::vector<NetStallFault> net_stalls;
  /// Seeds the corruption mode choice (malformed vs duplicate) per index.
  std::uint64_t seed = 0xFA17;

  [[nodiscard]] bool empty() const noexcept {
    return kills.empty() && degrades.empty() && stalls.empty() && corrupt_records.empty() &&
           net_kills.empty() && net_drops.empty() && net_corrupt_frames.empty() &&
           net_stalls.empty();
  }

  /// Parses the wormctl SPEC grammar above; throws support::PreconditionError
  /// with a field-accurate message on malformed specs.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

}  // namespace worms::fleet
