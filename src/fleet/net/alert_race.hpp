// Alert-vs-worm race simulation for the distributed containment fleet.
//
// The paper's single-monitor analysis assumes one vantage point sees every
// scan a host makes; a fleet of K monitors sharded by *destination* sees only
// ~1/K of them each, so any one monitor needs ~K·M observed scans before the
// local scan-count policy trips — the worm gets a K× longer leash.  Alert
// gossip closes that gap: the first monitor to flag a host announces it, and
// every peer pre-contains (administratively blocks) the host in its own
// slice.  Whether that helps depends on a race — the alert must cross the
// mesh (gossip_delay steps) before the host's remaining slices infect fresh
// targets — which is exactly the alert-dissemination race analyzed by
// Shakkottai & Srikant for P2P patch networks.
//
// The model is a deterministic discrete-time epidemic:
//
//   * `hosts` vulnerable hosts in an `address_space`-sized space; a scan hits
//     a vulnerable address with probability hosts/address_space.
//   * Each infected host makes `scan_rate` scans per step, drawn from its own
//     splitmix64 stream — blocking one host never perturbs another host's
//     draw sequence, so gossip on/off runs differ ONLY through blocking.
//   * Scan to address a is observed by monitor a % nodes; a monitor that has
//     blocked the source drops the scan (no infection, no observation).
//   * A monitor flags a source at ceil(phi * budget) observed scans and
//     gossips one alert (deduplicated fleet-wide); it locally contains the
//     source at `budget` scans regardless.
//   * With gossip enabled, alerts are delivered `gossip_delay` steps later to
//     every monitor, which pre-contains the host.  Alert batches round-trip
//     through encode_alerts/decode_alerts — the same wire codec the live
//     ServeNode gossip path uses.
//
// At equal phi, enabling gossip must yield strictly fewer total infections —
// the acceptance experiment for this subsystem (EXPERIMENTS.md).
#pragma once

#include <cstdint>
#include <vector>

namespace worms::fleet::net {

struct AlertRaceConfig {
  std::uint32_t hosts = 1000;           ///< vulnerable population
  std::uint64_t address_space = 4096;   ///< scanned space (>= hosts)
  std::uint32_t nodes = 4;              ///< monitors, sharded by destination
  std::uint32_t budget = 10;            ///< per-monitor scan limit M
  double phi = 0.5;                     ///< alert at ceil(phi*M) observed scans
  std::uint32_t initial_infected = 2;   ///< patient-zero hosts (lowest ids)
  std::uint32_t scan_rate = 4;          ///< scans per infected host per step
  std::uint32_t steps = 200;            ///< simulated steps
  std::uint32_t gossip_delay = 2;       ///< steps before an alert lands
  bool gossip = true;                   ///< off = local containment only
  std::uint64_t seed = 0x5EEDFEEDULL;

  /// Throws support::PreconditionError on an inconsistent configuration.
  void validate() const;
};

struct AlertRaceResult {
  std::uint64_t total_infected = 0;      ///< initial + new infections
  std::uint64_t new_infections = 0;      ///< infections caused by scanning
  std::uint64_t scans_attempted = 0;
  std::uint64_t scans_blocked = 0;       ///< dropped by a blocking monitor
  std::uint64_t local_containments = 0;  ///< per-monitor budget trips
  std::uint64_t alerts_gossiped = 0;     ///< deduplicated alerts sent
  std::uint64_t pre_containments = 0;    ///< (monitor, host) blocks via alerts
  std::uint32_t first_alert_step = 0;    ///< 0 when no alert fired
  std::uint32_t hosts_fully_blocked = 0; ///< blocked at every monitor by the end
};

/// Runs the race to completion (config.steps or epidemic exhaustion).
/// Deterministic: equal configs give equal results, and configs differing
/// only in `gossip` share every per-host scan sequence.
[[nodiscard]] AlertRaceResult run_alert_race(const AlertRaceConfig& config);

}  // namespace worms::fleet::net
