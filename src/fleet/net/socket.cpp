#include "fleet/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>

#include "support/check.hpp"

namespace worms::fleet::net {

namespace {

[[noreturn]] void bad_endpoint(std::string_view text, const char* why) {
  throw support::PreconditionError("bad endpoint '" + std::string(text) + "': " + why);
}

[[nodiscard]] std::string errno_string(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_error(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

[[nodiscard]] bool set_nonblocking(int fd) noexcept {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Resolves the restricted host grammar (numeric IPv4 or "localhost") into a
/// network-order address.  Throws on anything else — no DNS by design.
[[nodiscard]] in_addr_t resolve_host(std::string_view host, std::string_view full) {
  const std::string text = host == "localhost" ? "127.0.0.1" : std::string(host);
  in_addr addr{};
  if (::inet_pton(AF_INET, text.c_str(), &addr) != 1) {
    bad_endpoint(full, "HOST must be a numeric IPv4 address or 'localhost'");
  }
  return addr.s_addr;
}

[[nodiscard]] sockaddr_in make_sockaddr(const Endpoint& endpoint) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  addr.sin_addr.s_addr = resolve_host(endpoint.host, endpoint.to_string());
  return addr;
}

/// poll() one fd for `events`, honouring the deadline.  Returns true when the
/// fd is ready, false on timeout; retries EINTR against the remaining budget.
[[nodiscard]] bool poll_fd(int fd, short events, std::chrono::milliseconds timeout) noexcept {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    const int budget = remaining.count() > 0 ? static_cast<int>(remaining.count()) : 0;
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, budget);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace

std::string Endpoint::to_string() const {
  return host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(std::string_view text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string_view::npos) bad_endpoint(text, "expected HOST:PORT");
  const std::string_view host = text.substr(0, colon);
  const std::string_view port_text = text.substr(colon + 1);
  if (host.empty()) bad_endpoint(text, "HOST must not be empty");
  if (port_text.empty()) bad_endpoint(text, "PORT must not be empty");

  std::uint32_t port = 0;
  const auto [ptr, ec] =
      std::from_chars(port_text.data(), port_text.data() + port_text.size(), port);
  if (ec != std::errc() || ptr != port_text.data() + port_text.size()) {
    bad_endpoint(text, "PORT must be a non-negative integer");
  }
  if (port > 65535) bad_endpoint(text, "PORT must be <= 65535");

  Endpoint endpoint;
  endpoint.host = std::string(host);
  endpoint.port = static_cast<std::uint16_t>(port);
  resolve_host(endpoint.host, text);  // validate eagerly, at flag-parse time
  return endpoint;
}

std::vector<Endpoint> parse_endpoint_list(std::string_view text) {
  std::vector<Endpoint> endpoints;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string_view item =
        text.substr(pos, comma == std::string_view::npos ? std::string_view::npos : comma - pos);
    pos = comma == std::string_view::npos ? text.size() + 1 : comma + 1;
    if (item.empty()) bad_endpoint(text, "empty entry in endpoint list");
    endpoints.push_back(parse_endpoint(item));
  }
  if (endpoints.empty()) bad_endpoint(text, "expected at least one HOST:PORT");
  return endpoints;
}

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

std::optional<TcpStream> TcpStream::connect(const Endpoint& endpoint,
                                            std::chrono::milliseconds timeout,
                                            std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, errno_string("socket"));
    return std::nullopt;
  }
  TcpStream stream(fd);
  if (!set_nonblocking(fd)) {
    set_error(error, errno_string("fcntl(O_NONBLOCK)"));
    return std::nullopt;
  }
  const sockaddr_in addr = make_sockaddr(endpoint);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      set_error(error, errno_string("connect"));
      return std::nullopt;
    }
    if (!poll_fd(fd, POLLOUT, timeout)) {
      set_error(error, "connect timed out after " + std::to_string(timeout.count()) + " ms");
      return std::nullopt;
    }
    int so_error = 0;
    socklen_t len = sizeof so_error;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 || so_error != 0) {
      errno = so_error != 0 ? so_error : errno;
      set_error(error, errno_string("connect"));
      return std::nullopt;
    }
  }
  // Frames are small and latency-sensitive (alerts race a worm); disable
  // Nagle so a flushed alert leaves the host immediately.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return stream;
}

TcpStream::ReadResult TcpStream::read_some(char* out, std::size_t capacity,
                                           std::chrono::milliseconds timeout) {
  if (fd_ < 0) return {IoStatus::Error, 0};
  for (;;) {
    const ssize_t n = ::recv(fd_, out, capacity, 0);
    if (n > 0) return {IoStatus::Ok, static_cast<std::size_t>(n)};
    if (n == 0) return {IoStatus::Eof, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!poll_fd(fd_, POLLIN, timeout)) return {IoStatus::Timeout, 0};
      continue;
    }
    return {IoStatus::Error, 0};
  }
}

bool TcpStream::write_all(std::string_view data, std::chrono::milliseconds timeout) {
  if (fd_ < 0) return false;
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a peer that died mid-write yields EPIPE, not SIGPIPE —
    // the reconnect path handles the error; a signal would kill the node.
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!poll_fd(fd_, POLLOUT, timeout)) return false;
      continue;
    }
    return false;
  }
  return true;
}

void TcpStream::shutdown_send() noexcept {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_WR);
}

void TcpStream::close() noexcept {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

std::optional<TcpListener> TcpListener::bind(const Endpoint& endpoint, std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    set_error(error, errno_string("socket"));
    return std::nullopt;
  }
  TcpListener listener;
  listener.fd_ = fd;
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr = make_sockaddr(endpoint);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    set_error(error, errno_string("bind"));
    return std::nullopt;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    set_error(error, errno_string("listen"));
    return std::nullopt;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    set_error(error, errno_string("getsockname"));
    return std::nullopt;
  }
  listener.port_ = ntohs(addr.sin_port);
  if (!set_nonblocking(fd)) {
    set_error(error, errno_string("fcntl(O_NONBLOCK)"));
    return std::nullopt;
  }
  return listener;
}

std::optional<TcpStream> TcpListener::accept(std::chrono::milliseconds timeout) {
  if (fd_ < 0) return std::nullopt;
  for (;;) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      TcpStream stream(client);
      if (!set_nonblocking(client)) return std::nullopt;
      const int one = 1;
      (void)::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return stream;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      if (!poll_fd(fd_, POLLIN, timeout)) return std::nullopt;
      continue;
    }
    return std::nullopt;
  }
}

void TcpListener::close() noexcept {
  if (fd_ >= 0) {
    (void)::close(fd_);
    fd_ = -1;
  }
}

}  // namespace worms::fleet::net
