#include "fleet/net/node.hpp"

#include <algorithm>
#include <cstdlib>
#include <future>
#include <utility>

#include "obs/event_log.hpp"
#include "obs/registry.hpp"
#include "support/check.hpp"

namespace worms::fleet::net {

namespace {

/// Read/accept slice: short enough that readers notice stop/drop flags and
/// the accept loop re-checks its exit condition promptly, long enough that
/// an idle node burns no measurable CPU.
constexpr std::chrono::milliseconds kPollSlice{100};

}  // namespace

// ---------------------------------------------------------------------------
// PeerLink.

PeerLink::PeerLink(const Config& config) : config_(config) {
  WORMS_EXPECTS(config_.queue_capacity > 0 && "peer link queue capacity must be nonzero");
  sender_ = std::thread(&PeerLink::run, this);
}

PeerLink::~PeerLink() { finish(); }

bool PeerLink::enqueue(std::string frame) {
  if (dead_.load(std::memory_order_acquire)) {
    frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ || queue_.size() >= config_.queue_capacity) {
      frames_dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    queue_.push_back(std::move(frame));
  }
  cv_.notify_one();
  return true;
}

void PeerLink::finish() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && !sender_.joinable()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (sender_.joinable()) sender_.join();
}

void PeerLink::run() {
  // Salt the jitter stream with the endpoint + node identity so a fleet of
  // links retrying the same dead peer still spreads its reconnects.
  Backoff backoff(config_.retry,
                  (static_cast<std::uint64_t>(config_.endpoint.port) << 17) ^ config_.node_id);
  TcpStream stream;
  bool connected_before = false;

  const auto connect_once = [&]() -> bool {
    auto attempt = TcpStream::connect(config_.endpoint, config_.timeouts.connect);
    if (!attempt) return false;
    // Identify as a peer on every (re)connect; the server routes by Hello.
    const std::string hello = encode_frame(
        FrameType::Hello, encode_hello(HelloPayload{config_.node_id, HelloPayload::Kind::Peer}));
    if (!attempt->write_all(hello, config_.timeouts.write)) return false;
    stream = std::move(*attempt);
    if (connected_before) reconnects_.fetch_add(1, std::memory_order_relaxed);
    connected_before = true;
    return true;
  };

  const auto mark_dead = [&] {
    dead_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mutex_);
    frames_dropped_.fetch_add(queue_.size(), std::memory_order_relaxed);
    queue_.clear();
  };

  std::string frame;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping_ with a drained queue
      frame = std::move(queue_.front());
      queue_.pop_front();
    }
    bool sent = false;
    while (!sent && !dead_.load(std::memory_order_relaxed)) {
      if (stream.valid() && stream.write_all(frame, config_.timeouts.write)) {
        sent = true;
        backoff.reset();
        break;
      }
      stream.close();  // the frame is resent whole on the next connection
      if (backoff.exhausted()) {
        mark_dead();
        break;
      }
      std::this_thread::sleep_for(backoff.next_delay());
      if (connect_once()) continue;  // retry the write immediately
    }
    if (sent) {
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
    } else {
      frames_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
    frame.clear();
  }
  stream.close();
}

// ---------------------------------------------------------------------------
// ServeNode plumbing types.

struct ServeNode::NodeTask {
  enum class Kind : std::uint8_t {
    ClientHello,
    Records,
    Alerts,
    StoreCheckpoint,
    ClientDone,
    StatsQuery,
  };

  Kind kind = Kind::Records;
  std::uint64_t client_id = 0;
  std::vector<trace::ConnRecord> records;
  /// Provenance stamp carried by a Records frame: the sender's identity and
  /// the stream position of records.front() in that sender's stream.
  std::uint64_t origin_node = 0;
  std::uint64_t stream_position = 0;
  std::vector<AlertEntry> alerts;
  CheckpointPayload checkpoint;
  std::uint64_t bye_position = 0;
  /// Hello/Bye round trip: the reader blocks on the matching future and
  /// writes the position back to the client as a Welcome frame.
  std::shared_ptr<std::promise<std::uint64_t>> reply;
  /// StatsQuery round trip: the reader blocks on the matching future and
  /// writes the encoded report back as a StatsReport frame.
  std::shared_ptr<std::promise<std::string>> stats_reply;
};

struct ServeNode::Connection {
  std::uint64_t conn_id = 0;
  TcpStream stream;
  FrameDecoder decoder;
  std::thread reader;
  std::atomic<bool> close_requested{false};  ///< netdrop fault or node shutdown
  std::atomic<bool> done{false};
  std::atomic<bool> hello_seen{false};
  std::atomic<std::uint8_t> kind{static_cast<std::uint8_t>(HelloPayload::Kind::Ingest)};
  std::uint64_t client_id = 0;  ///< reader thread only
};

// ---------------------------------------------------------------------------
// ServeNode.

ServeNode::ServeNode(NodeOptions options)
    : options_(std::move(options)),
      wire_dead_letters_(DeadLetterChannel::Config{
          .capacity = 256, .spill_path = {}, .metrics = options_.pipeline.metrics}) {
  WORMS_EXPECTS(options_.replicate_to.has_value() == (options_.replicate_every != 0) &&
                "serve: --replicate-to and --replicate-every must be set together");
  // The node's identity is the verdict-provenance stamp unless the caller
  // gave the pipeline its own.
  if (options_.pipeline.node_id == 0) options_.pipeline.node_id = options_.node_id;
  options_.pipeline.validate();

  std::string error;
  auto listener = TcpListener::bind(options_.listen, &error);
  if (!listener) {
    throw support::PreconditionError("serve: cannot listen on " + options_.listen.to_string() +
                                     ": " + error);
  }
  listener_ = std::move(*listener);

  // Shard workers report removals here; the ingest thread gossips them.
  options_.pipeline.on_removal = [this](std::uint32_t host, sim::SimTime removal_time) {
    std::lock_guard<std::mutex> lock(alerts_mutex_);
    pending_alerts_.push_back(AlertEntry{host, removal_time});
  };

  if (options_.pipeline.metrics != nullptr) {
    obs::Registry& reg = *options_.pipeline.metrics;
    obs_connections_ = &reg.counter("fleet_net_connections_accepted_total");
    obs_frames_rx_ = &reg.counter("fleet_net_frames_rx_total");
    obs_frames_tx_ = &reg.counter("fleet_net_frames_tx_total");
    obs_records_rx_ = &reg.counter("fleet_net_records_rx_total");
    obs_alerts_rx_ = &reg.counter("fleet_net_alerts_rx_total");
    obs_alerts_tx_ = &reg.counter("fleet_net_alerts_tx_total");
    obs_alerts_dropped_ = &reg.counter("fleet_net_alerts_dropped_total");
    obs_reconnects_ = &reg.counter("fleet_net_reconnects_total");
    obs_replicated_ = &reg.counter("fleet_net_checkpoints_replicated_total");
    obs_ckpt_stored_ = &reg.counter("fleet_net_checkpoints_stored_total");
    obs_replication_lag_ = &reg.gauge("fleet_net_replication_lag_records");
    obs_peers_degraded_ = &reg.gauge("fleet_net_peers_degraded");
  }

  PeerLink::Config link_config{
      .endpoint = {},
      .timeouts = options_.timeouts,
      .retry = options_.retry,
      .node_id = options_.node_id,
  };
  for (const Endpoint& peer : options_.peers) {
    link_config.endpoint = peer;
    peer_links_.push_back(std::make_unique<PeerLink>(link_config));
  }
  if (options_.replicate_to.has_value()) {
    // Reuse the gossip link when the replica is also a peer; otherwise the
    // replication stream gets its own connection.
    for (std::size_t i = 0; i < options_.peers.size(); ++i) {
      if (options_.peers[i] == *options_.replicate_to) {
        replicate_link_ = peer_links_[i].get();
        gossip_to_replica_ = true;
      }
    }
    if (replicate_link_ == nullptr) {
      link_config.endpoint = *options_.replicate_to;
      peer_links_.push_back(std::make_unique<PeerLink>(link_config));
      replicate_link_ = peer_links_.back().get();
    }
  }

  // Sort the net fault schedules so a single cursor per kind suffices.
  std::sort(options_.faults.net_kills.begin(), options_.faults.net_kills.end());
  std::sort(options_.faults.net_drops.begin(), options_.faults.net_drops.end());
  std::sort(options_.faults.net_stalls.begin(), options_.faults.net_stalls.end(),
            [](const FaultPlan::NetStallFault& a, const FaultPlan::NetStallFault& b) {
              return a.after_frames < b.after_frames;
            });

  tasks_ = std::make_unique<BoundedMpscQueue<NodeTask>>(options_.ingest_queue_capacity);
  ingest_thread_ = std::thread(&ServeNode::ingest_loop, this);
  accept_thread_ = std::thread(&ServeNode::accept_loop, this);
}

ServeNode::~ServeNode() {
  if (!waited_) {
    stop();
    try {
      (void)wait();
    } catch (...) {
      // Destructor cleanup must not throw; wait() reports errors only when
      // called explicitly.
    }
  }
}

void ServeNode::stop() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(done_mutex_);
  }
  done_cv_.notify_all();
}

bool ServeNode::exit_condition_met() const {
  return clients_completed_.load(std::memory_order_acquire) >= options_.expect_clients &&
         peers_closed_.load(std::memory_order_acquire) >= options_.expect_peers;
}

void ServeNode::accept_loop() {
  std::uint64_t next_conn_id = 0;
  while (!stop_.load(std::memory_order_acquire) && !exit_condition_met()) {
    auto stream = listener_.accept(kPollSlice);
    if (!stream) continue;
    auto conn = std::make_unique<Connection>();
    conn->conn_id = ++next_conn_id;
    conn->stream = std::move(*stream);
    report_.connections_accepted++;
    if (obs_connections_ != nullptr) obs_connections_->add(1);
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(connections_mutex_);
      connections_.push_back(std::move(conn));
    }
    raw->reader = std::thread(&ServeNode::reader_loop, this, std::ref(*raw));
  }
}

void ServeNode::note_wire_dead_letter(const Connection& conn, DeadLetterReason reason,
                                      std::string detail) {
  DeadLetterEntry entry;
  entry.reason = reason;
  entry.stream_index = conn.decoder.frames_decoded();
  entry.detail = "conn " + std::to_string(conn.conn_id) + ": " + std::move(detail);
  if (obs::EventLog* log = obs::kEnabled ? options_.pipeline.events : nullptr) {
    // Reader threads have no logical writer identity; use the thread-local.
    log->local_writer().emit(obs::EventType::NetQuarantine, entry.stream_index,
                             static_cast<std::uint64_t>(reason), conn.conn_id);
  }
  wire_dead_letters_.report(std::move(entry));
}

void ServeNode::apply_net_faults_after_frame() {
  const std::uint64_t total = frames_received_.load(std::memory_order_relaxed);
  std::optional<double> stall_seconds;
  bool drop = false;
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    const auto& faults = options_.faults;
    if (next_net_kill_ < faults.net_kills.size() && total >= faults.net_kills[next_net_kill_]) {
      // A hard primary crash: no destructors, no flushes — exactly what the
      // failover drill needs the promoted replica to survive.
      std::_Exit(9);
    }
    if (next_net_drop_ < faults.net_drops.size() && total >= faults.net_drops[next_net_drop_]) {
      ++next_net_drop_;
      drop = true;
    }
    if (next_net_stall_ < faults.net_stalls.size() &&
        total >= faults.net_stalls[next_net_stall_].after_frames) {
      stall_seconds = faults.net_stalls[next_net_stall_].seconds;
      ++next_net_stall_;
    }
  }
  obs::EventLog* log = obs::kEnabled ? options_.pipeline.events : nullptr;
  if (drop) {
    if (log != nullptr) {
      // Net clauses index frames, not records — `position` here is the
      // node's received-frame count when the clause fired.
      log->local_writer().emit(obs::EventType::FaultClauseFired, total,
                               static_cast<std::uint64_t>(obs::FaultKind::NetDrop), 0);
    }
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) {
      if (conn->done.load(std::memory_order_relaxed)) continue;
      if (!conn->hello_seen.load(std::memory_order_acquire)) continue;
      if (conn->kind.load(std::memory_order_relaxed) !=
          static_cast<std::uint8_t>(HelloPayload::Kind::Ingest)) {
        continue;
      }
      if (!conn->close_requested.exchange(true, std::memory_order_acq_rel)) {
        connections_dropped_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (stall_seconds.has_value()) {
    if (log != nullptr) {
      log->local_writer().emit(obs::EventType::FaultClauseFired, total,
                               static_cast<std::uint64_t>(obs::FaultKind::NetStall), 0);
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(*stall_seconds));
  }
}

void ServeNode::handle_frame(Connection& conn, Frame frame) {
  frames_received_.fetch_add(1, std::memory_order_relaxed);
  if (obs_frames_rx_ != nullptr) obs_frames_rx_->add(1);

  switch (frame.type) {
    case FrameType::Hello: {
      const HelloPayload hello = decode_hello(frame.payload);
      conn.client_id = hello.client_id;
      conn.kind.store(static_cast<std::uint8_t>(hello.kind), std::memory_order_relaxed);
      conn.hello_seen.store(true, std::memory_order_release);
      if (hello.kind == HelloPayload::Kind::Peer) break;  // peers are write-only
      NodeTask task;
      task.kind = NodeTask::Kind::ClientHello;
      task.client_id = hello.client_id;
      task.reply = std::make_shared<std::promise<std::uint64_t>>();
      std::future<std::uint64_t> position = task.reply->get_future();
      tasks_->push(std::move(task));
      const std::string welcome =
          encode_frame(FrameType::Welcome, encode_welcome(WelcomePayload{position.get()}));
      if (!conn.stream.write_all(welcome, options_.timeouts.write)) {
        conn.close_requested.store(true, std::memory_order_release);
        break;
      }
      frames_sent_direct_.fetch_add(1, std::memory_order_relaxed);
      if (obs_frames_tx_ != nullptr) obs_frames_tx_->add(1);
      break;
    }
    case FrameType::Records: {
      RecordsPayload batch = decode_records(frame.payload);
      NodeTask task;
      task.kind = NodeTask::Kind::Records;
      task.client_id = conn.client_id;
      task.origin_node = batch.node_id;
      task.stream_position = batch.stream_position;
      task.records = std::move(batch.records);
      tasks_->push(std::move(task));
      break;
    }
    case FrameType::Alert: {
      NodeTask task;
      task.kind = NodeTask::Kind::Alerts;
      task.client_id = conn.client_id;
      task.alerts = decode_alerts(frame.payload);
      tasks_->push(std::move(task));
      break;
    }
    case FrameType::Checkpoint: {
      NodeTask task;
      task.kind = NodeTask::Kind::StoreCheckpoint;
      task.client_id = conn.client_id;
      task.checkpoint = decode_checkpoint(frame.payload);
      tasks_->push(std::move(task));
      break;
    }
    case FrameType::Bye: {
      NodeTask task;
      task.kind = NodeTask::Kind::ClientDone;
      task.client_id = conn.client_id;
      task.bye_position = decode_bye(frame.payload).records_sent;
      task.reply = std::make_shared<std::promise<std::uint64_t>>();
      std::future<std::uint64_t> position = task.reply->get_future();
      tasks_->push(std::move(task));
      // Ack with the server-side position: the client compares it against
      // what it sent, so a dead-lettered tail frame triggers a resend
      // instead of silent loss.
      const std::string ack =
          encode_frame(FrameType::Welcome, encode_welcome(WelcomePayload{position.get()}));
      if (conn.stream.write_all(ack, options_.timeouts.write)) {
        frames_sent_direct_.fetch_add(1, std::memory_order_relaxed);
        if (obs_frames_tx_ != nullptr) obs_frames_tx_->add(1);
      }
      break;
    }
    case FrameType::StatsQuery: {
      // Status probes carry no Hello and no payload; the reply is computed on
      // the ingest thread (the only thread allowed to read pipeline state)
      // and round-tripped back through a promise, like Welcome.
      WORMS_EXPECTS(frame.payload.empty() && "stats query: unexpected payload");
      NodeTask task;
      task.kind = NodeTask::Kind::StatsQuery;
      task.client_id = conn.client_id;
      task.stats_reply = std::make_shared<std::promise<std::string>>();
      std::future<std::string> payload = task.stats_reply->get_future();
      tasks_->push(std::move(task));
      const std::string reply = encode_frame(FrameType::StatsReport, payload.get());
      if (conn.stream.write_all(reply, options_.timeouts.write)) {
        frames_sent_direct_.fetch_add(1, std::memory_order_relaxed);
        if (obs_frames_tx_ != nullptr) obs_frames_tx_->add(1);
      }
      break;
    }
    case FrameType::Welcome:
    case FrameType::StatsReport:
      // Only servers speak Welcome/StatsReport; receiving either is a
      // protocol violation.
      throw support::PreconditionError(std::string("unexpected ") + to_string(frame.type) +
                                       " frame from a client");
  }
}

void ServeNode::reader_loop(Connection& conn) {
  char buffer[64 * 1024];
  bool orderly = false;
  bool poisoned = false;
  while (!stop_.load(std::memory_order_acquire)) {
    if (conn.close_requested.load(std::memory_order_acquire)) break;
    const TcpStream::ReadResult read = conn.stream.read_some(buffer, sizeof buffer, kPollSlice);
    if (read.status == IoStatus::Timeout) continue;
    if (read.status == IoStatus::Eof) {
      orderly = true;
      break;
    }
    if (read.status == IoStatus::Error) break;
    bytes_received_.fetch_add(read.bytes, std::memory_order_relaxed);
    conn.decoder.append(buffer, read.bytes);
    while (!poisoned) {
      FrameDecoder::Result result = conn.decoder.next();
      if (result.status == FrameDecoder::Status::NeedMore) break;
      if (result.status == FrameDecoder::Status::Error) {
        note_wire_dead_letter(conn, result.reason, std::move(result.detail));
        poisoned = true;
        break;
      }
      try {
        handle_frame(conn, std::move(result.frame));
      } catch (const std::exception& e) {
        // The frame passed its checksum but its payload shape is wrong — a
        // protocol violation, quarantined like any other undecodable frame.
        note_wire_dead_letter(conn, DeadLetterReason::Malformed, e.what());
        poisoned = true;
        break;
      }
      apply_net_faults_after_frame();
    }
    if (poisoned) break;  // close; the client's resume protocol recovers
  }
  if (orderly && !poisoned) {
    // Orderly EOF: flush the decoder so a trailing partial frame is
    // accounted as truncation rather than silently vanishing.
    conn.decoder.finish();
    FrameDecoder::Result result = conn.decoder.next();
    if (result.status == FrameDecoder::Status::Error) {
      note_wire_dead_letter(conn, result.reason, std::move(result.detail));
    }
  }
  conn.stream.close();
  if (conn.hello_seen.load(std::memory_order_acquire) &&
      conn.kind.load(std::memory_order_relaxed) ==
          static_cast<std::uint8_t>(HelloPayload::Kind::Peer)) {
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      peers_closed_.fetch_add(1, std::memory_order_acq_rel);
    }
    done_cv_.notify_all();
  }
  conn.done.store(true, std::memory_order_release);
}

void ServeNode::ensure_pipeline() {
  if (pipeline_ != nullptr) return;
  maybe_promote();
  if (pipeline_ == nullptr) pipeline_ = std::make_unique<ContainmentPipeline>(options_.pipeline);
}

void ServeNode::maybe_promote() {
  if (pipeline_ != nullptr || !stored_checkpoint_.has_value()) return;
  // Replica promotion: rebuild the pipeline from the last replicated
  // snapshot and seed every client's resume position from it.  Clients that
  // fail over here are welcomed at those positions and replay the suffix —
  // checkpoint + suffix replay is bit-identical to the uninterrupted run.
  pipeline_ = ContainmentPipeline::restore_from_blob(options_.pipeline, stored_checkpoint_->snapshot);
  for (const auto& [client, position] : stored_checkpoint_->client_positions) {
    client_positions_[client] = position;
  }
  promoted_ = true;
  promoted_position_ = pipeline_->records_fed();
  last_replicated_position_ = pipeline_->records_fed();
  stored_checkpoint_.reset();
  if (obs::EventLog* log = obs::kEnabled ? options_.pipeline.events : nullptr) {
    // Ingest thread — shares the pipeline's ingest writer (id 0).
    log->writer(0).emit(obs::EventType::ReplicaPromotion, promoted_position_, options_.node_id,
                        promoted_position_);
  }
}

void ServeNode::ingest_loop() {
  for (;;) {
    std::optional<NodeTask> task = tasks_->pop_wait_for(std::chrono::milliseconds(200));
    if (!task.has_value()) {
      if (tasks_->drained()) break;
      continue;
    }
    try {
      switch (task->kind) {
        case NodeTask::Kind::ClientHello: {
          ensure_pipeline();
          const auto [it, inserted] = client_positions_.try_emplace(task->client_id, 0);
          (void)inserted;
          task->reply->set_value(it->second);
          break;
        }
        case NodeTask::Kind::Records: {
          ensure_pipeline();
          // The provenance stamp must agree with the server's fed count for
          // this client — the resume protocol guarantees it.  A disagreeing
          // stamp means a sender bug or an impostor stream; quarantine the
          // batch (the short Bye ack makes the client resend it).
          if (task->stream_position != client_positions_[task->client_id]) {
            DeadLetterEntry entry;
            entry.reason = DeadLetterReason::OutOfOrder;
            entry.stream_index = task->stream_position;
            entry.detail = "records stamp from node " + std::to_string(task->origin_node) +
                           " at position " + std::to_string(task->stream_position) +
                           " != server position " +
                           std::to_string(client_positions_[task->client_id]) + " for client " +
                           std::to_string(task->client_id);
            wire_dead_letters_.report(std::move(entry));
            break;
          }
          pipeline_->feed(task->records);
          client_positions_[task->client_id] += task->records.size();
          records_received_ += task->records.size();
          records_since_gossip_ += task->records.size();
          if (obs_records_rx_ != nullptr) obs_records_rx_->add(task->records.size());
          flush_alerts(false);
          maybe_replicate(false);
          break;
        }
        case NodeTask::Kind::Alerts: {
          alerts_received_ += task->alerts.size();
          if (obs_alerts_rx_ != nullptr) obs_alerts_rx_->add(task->alerts.size());
          if (!options_.apply_alerts) break;
          ensure_pipeline();
          std::vector<std::uint32_t> hosts;
          hosts.reserve(task->alerts.size());
          for (const AlertEntry& alert : task->alerts) {
            if (alerted_.insert(alert.host).second) hosts.push_back(alert.host);
          }
          // No re-forwarding: the gossip mesh is full, so every node hears
          // each alert directly and loops cannot form.
          if (!hosts.empty()) pipeline_->pre_contain(hosts);
          break;
        }
        case NodeTask::Kind::StoreCheckpoint: {
          // Replica role: retain only the newest snapshot; promotion (first
          // pipeline need after the primary dies) consumes it.
          if (pipeline_ == nullptr) stored_checkpoint_ = std::move(task->checkpoint);
          checkpoints_stored_.fetch_add(1, std::memory_order_release);
          if (obs_ckpt_stored_ != nullptr) obs_ckpt_stored_->add(1);
          break;
        }
        case NodeTask::Kind::ClientDone: {
          ensure_pipeline();
          const std::uint64_t position = client_positions_[task->client_id];
          task->reply->set_value(position);
          // Count the client only when nothing went missing en route — a
          // short position means a dead-lettered frame; the client will
          // reconnect, resend, and say Bye again.
          if (position == task->bye_position) {
            {
              std::lock_guard<std::mutex> lock(done_mutex_);
              clients_completed_.fetch_add(1, std::memory_order_acq_rel);
            }
            done_cv_.notify_all();
          }
          break;
        }
        case NodeTask::Kind::StatsQuery: {
          task->stats_reply->set_value(build_stats_report());
          break;
        }
      }
    } catch (const std::exception& e) {
      if (ingest_error_.empty()) ingest_error_ = e.what();
      stop();
    }
  }
}

std::string ServeNode::build_stats_report() {
  ensure_pipeline();
  const PipelineStatus status = pipeline_->status();
  StatsReportPayload report;
  report.node_id = options_.node_id;
  report.records_fed = status.records_fed;
  report.checkpoints_written = status.checkpoints_written;
  report.checkpoint_position = status.checkpoint_position;
  report.counter_backend = static_cast<std::uint8_t>(status.configured_backend);
  report.promoted = promoted_ ? 1 : 0;
  for (std::size_t s = 0; s < status.shard_backend.size(); ++s) {
    report.shard_backend.push_back(static_cast<std::uint8_t>(status.shard_backend[s]));
    report.shard_health.push_back(static_cast<std::uint8_t>(status.shard_health[s]));
    report.queue_depth.push_back(status.queue_depth[s]);
  }
  // Pipeline rejects + wire quarantines fold into one per-reason view; the
  // frame-level reasons only ever come from the wire channel.
  const DeadLetterStats wire = wire_dead_letters_.stats();
  report.dead_letters_malformed = status.dead_letters.malformed + wire.malformed;
  report.dead_letters_out_of_order = status.dead_letters.out_of_order + wire.out_of_order;
  report.dead_letters_duplicate = status.dead_letters.duplicate + wire.duplicate;
  report.dead_letters_overflow = status.dead_letters.overflow_dropped + wire.overflow_dropped;
  if (options_.pipeline.metrics != nullptr) {
    const obs::MetricsSnapshot snapshot = options_.pipeline.metrics->snapshot();
    report.counters.reserve(snapshot.counters.size());
    for (const obs::CounterSnapshot& c : snapshot.counters) {
      report.counters.push_back(StatsSample{c.name, static_cast<double>(c.value)});
    }
    report.gauges.reserve(snapshot.gauges.size());
    for (const obs::GaugeSnapshot& g : snapshot.gauges) {
      report.gauges.push_back(StatsSample{g.name, g.value});
    }
  }
  return encode_stats_report(report);
}

void ServeNode::flush_alerts(bool force) {
  if (!force && options_.gossip_every != 0 && records_since_gossip_ < options_.gossip_every) {
    return;
  }
  records_since_gossip_ = 0;
  std::vector<AlertEntry> batch;
  {
    std::lock_guard<std::mutex> lock(alerts_mutex_);
    batch.swap(pending_alerts_);
  }
  if (batch.empty()) return;
  // Dedupe against everything already announced or heard: a host contained
  // here after a peer's alert raced in does not get re-announced.
  std::vector<AlertEntry> fresh;
  fresh.reserve(batch.size());
  for (const AlertEntry& alert : batch) {
    if (alerted_.insert(alert.host).second) fresh.push_back(alert);
  }
  if (fresh.empty()) return;
  const std::string frame = encode_frame(FrameType::Alert, encode_alerts(fresh));
  for (const auto& link : peer_links_) {
    if (replicate_link_ == link.get() && !gossip_to_replica_) continue;
    if (link->enqueue(frame)) {
      alerts_sent_ += fresh.size();
      if (obs_alerts_tx_ != nullptr) obs_alerts_tx_->add(fresh.size());
    } else {
      alerts_dropped_ += fresh.size();
      if (obs_alerts_dropped_ != nullptr) obs_alerts_dropped_->add(fresh.size());
    }
  }
}

void ServeNode::maybe_replicate(bool force) {
  if (replicate_link_ == nullptr) return;
  if (!force) {
    if (pipeline_ == nullptr) return;
    if (pipeline_->records_fed() - last_replicated_position_ < options_.replicate_every) return;
  }
  ensure_pipeline();
  CheckpointPayload checkpoint;
  checkpoint.client_positions.assign(client_positions_.begin(), client_positions_.end());
  checkpoint.snapshot = pipeline_->snapshot_blob();
  last_replicated_position_ = pipeline_->records_fed();
  if (replicate_link_->enqueue(encode_frame(FrameType::Checkpoint, encode_checkpoint(checkpoint)))) {
    ++checkpoints_replicated_;
    if (obs_replicated_ != nullptr) obs_replicated_->add(1);
  }
  if (obs_replication_lag_ != nullptr) obs_replication_lag_->set(0.0);
}

NodeReport ServeNode::wait() {
  WORMS_EXPECTS(!waited_ && "ServeNode::wait() may be called only once");
  waited_ = true;
  {
    std::unique_lock<std::mutex> lock(done_mutex_);
    done_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) || exit_condition_met();
    });
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& conn : connections_) conn->close_requested.store(true, std::memory_order_release);
  }
  // The accept thread is gone, so connections_ is stable from here on.
  for (auto& conn : connections_) {
    if (conn->reader.joinable()) conn->reader.join();
  }
  tasks_->close();
  if (ingest_thread_.joinable()) ingest_thread_.join();
  if (!ingest_error_.empty()) {
    throw support::PreconditionError("serve: ingest failed: " + ingest_error_);
  }

  ensure_pipeline();
  // Final replication + finish + final alert flush: the snapshot quiesces
  // the shards, finish() joins the workers, and only then is
  // pending_alerts_ guaranteed complete.
  maybe_replicate(/*force=*/true);
  const std::uint64_t final_position = pipeline_->records_fed();
  report_.result = pipeline_->finish();
  flush_alerts(/*force=*/true);
  for (const auto& link : peer_links_) link->finish();

  report_.frames_received = frames_received_.load(std::memory_order_relaxed);
  report_.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  report_.records_received = records_received_;
  report_.alerts_received = alerts_received_;
  report_.alerts_sent = alerts_sent_;
  report_.alerts_dropped = alerts_dropped_;
  report_.checkpoints_replicated = checkpoints_replicated_;
  report_.checkpoints_stored = checkpoints_stored_.load(std::memory_order_acquire);
  report_.connections_dropped = connections_dropped_.load(std::memory_order_relaxed);
  report_.promoted_from_replica = promoted_;
  report_.promoted_position = promoted_position_;
  report_.replication_lag_records =
      replicate_link_ != nullptr ? final_position - last_replicated_position_ : 0;
  report_.wire_dead_letters = wire_dead_letters_.stats();
  report_.frames_sent = frames_sent_direct_.load(std::memory_order_relaxed);
  std::uint64_t dead_links = 0;
  for (const auto& link : peer_links_) {
    report_.frames_sent += link->frames_sent();
    report_.peer_reconnects += link->reconnects();
    if (link->dead()) {
      ++dead_links;
      report_.degraded_local_only = true;
    }
  }
  if (obs_frames_tx_ != nullptr) {
    obs_frames_tx_->add(report_.frames_sent - frames_sent_direct_.load(std::memory_order_relaxed));
  }
  if (obs_reconnects_ != nullptr) obs_reconnects_->add(report_.peer_reconnects);
  if (obs_replication_lag_ != nullptr) {
    obs_replication_lag_->set(static_cast<double>(report_.replication_lag_records));
  }
  if (obs_peers_degraded_ != nullptr) obs_peers_degraded_->set(static_cast<double>(dead_links));
  return std::move(report_);
}

// ---------------------------------------------------------------------------
// Ingest client.

namespace {

/// One connect + Hello + Welcome + stream-from-position session.  Returns
/// true when the source ran dry AND the server acked the full position.
struct SessionOutcome {
  bool welcomed = false;   ///< got a Welcome (counts as progress)
  bool completed = false;  ///< clean Bye handshake, stream fully delivered
};

[[nodiscard]] std::optional<Frame> read_one_frame(TcpStream& stream, FrameDecoder& decoder,
                                                  std::chrono::milliseconds timeout) {
  char buffer[4096];
  for (;;) {
    FrameDecoder::Result result = decoder.next();
    if (result.status == FrameDecoder::Status::Ready) return std::move(result.frame);
    if (result.status == FrameDecoder::Status::Error) return std::nullopt;
    const TcpStream::ReadResult read = stream.read_some(buffer, sizeof buffer, timeout);
    if (read.status != IoStatus::Ok) return std::nullopt;
    decoder.append(buffer, read.bytes);
  }
}

}  // namespace

IngestReport run_ingest(const IngestOptions& options, const SourceFactory& make_source) {
  WORMS_EXPECTS(!options.connect.empty() && "ingest: need at least one endpoint");
  WORMS_EXPECTS(options.batch_records > 0 && "ingest: batch_records must be nonzero");
  WORMS_EXPECTS(make_source != nullptr && "ingest: need a source factory");

  std::vector<std::uint64_t> corrupt = options.faults.net_corrupt_frames;
  std::sort(corrupt.begin(), corrupt.end());
  std::size_t next_corrupt = 0;
  std::uint64_t record_frames_sent = 0;  ///< netcorrupt index space, across sessions

  IngestReport report;
  std::uint64_t max_position = 0;  ///< furthest stream position ever reached
  std::size_t endpoint_index = 0;
  unsigned exhausted_endpoints = 0;  ///< consecutive endpoints that burned their budget
  bool first_session = true;
  Backoff backoff(options.retry, options.client_id);

  const auto run_session = [&](const Endpoint& endpoint) -> SessionOutcome {
    SessionOutcome outcome;
    auto maybe_stream = TcpStream::connect(endpoint, options.timeouts.connect);
    if (!maybe_stream) return outcome;
    TcpStream stream = std::move(*maybe_stream);

    const std::string hello = encode_frame(
        FrameType::Hello, encode_hello(HelloPayload{options.client_id, HelloPayload::Kind::Ingest}));
    if (!stream.write_all(hello, options.timeouts.write)) return outcome;

    FrameDecoder decoder;
    std::optional<Frame> welcome = read_one_frame(stream, decoder, options.timeouts.read);
    if (!welcome.has_value() || welcome->type != FrameType::Welcome) return outcome;
    const std::uint64_t resume = decode_welcome(welcome->payload).resume_position;
    outcome.welcomed = true;
    report.endpoint = endpoint.to_string();
    if (!first_session) ++report.reconnects;
    first_session = false;
    if (resume < max_position) report.records_resent += max_position - resume;

    std::unique_ptr<trace::RecordSource> source = make_source();
    WORMS_EXPECTS(source != nullptr && "ingest: source factory returned null");
    const std::uint64_t skipped = source->skip(resume);
    WORMS_EXPECTS(skipped == resume && "ingest: server resume position is beyond the source");

    std::uint64_t position = resume;
    // A promoted replica can know a position beyond anything this session
    // sent (its checkpoint covered the stream); the final report still owes
    // the true stream position.
    max_position = std::max(max_position, position);
    std::vector<trace::ConnRecord> batch(options.batch_records);
    for (;;) {
      const std::size_t filled = source->next_batch(batch);
      if (filled == 0) break;
      std::string frame = encode_frame(
          FrameType::Records,
          encode_records(std::span<const trace::ConnRecord>(batch.data(), filled),
                         options.client_id, position));
      if (next_corrupt < corrupt.size() && corrupt[next_corrupt] == record_frames_sent) {
        // Flip one payload byte AFTER checksumming: the receiver must
        // quarantine the frame as frame-checksum and drop the connection.
        frame[kFrameHeaderBytes + (frame.size() - kFrameHeaderBytes) / 2] ^= 0x20;
        ++next_corrupt;
      }
      ++record_frames_sent;
      ++report.frames_sent;
      if (!stream.write_all(frame, options.timeouts.write)) return outcome;
      position += filled;
      max_position = std::max(max_position, position);
    }

    // Bye handshake: the ack echoes the server's fed count, which is short
    // exactly when a frame was dead-lettered — in that case this session
    // reports incomplete and the next one resends the missing suffix.
    const std::string bye = encode_frame(FrameType::Bye, encode_bye(ByePayload{position}));
    if (!stream.write_all(bye, options.timeouts.write)) return outcome;
    stream.shutdown_send();
    std::optional<Frame> ack = read_one_frame(stream, decoder, options.timeouts.read);
    if (!ack.has_value() || ack->type != FrameType::Welcome) return outcome;
    outcome.completed = decode_welcome(ack->payload).resume_position == position;
    return outcome;
  };

  for (;;) {
    const SessionOutcome outcome = run_session(options.connect[endpoint_index]);
    report.records_sent = max_position;
    if (outcome.completed) return report;
    if (outcome.welcomed) {
      // The server answered: the endpoint is alive, the session just got cut
      // (drop fault, dead-lettered frame, server restart).  Start the retry
      // schedule over and reconnect immediately.
      backoff.reset();
      exhausted_endpoints = 0;
      continue;
    }
    if (backoff.exhausted()) {
      // This endpoint's budget is spent: fail over to the next one.
      endpoint_index = (endpoint_index + 1) % options.connect.size();
      ++report.failovers;
      ++exhausted_endpoints;
      if (exhausted_endpoints >= options.connect.size()) {
        throw support::PreconditionError(
            "ingest: no endpoint reachable after " + std::to_string(options.retry.max_retries) +
            " retries each across " + std::to_string(options.connect.size()) + " endpoint(s)");
      }
      backoff.reset();
      continue;
    }
    std::this_thread::sleep_for(backoff.next_delay());
  }
}

// ---------------------------------------------------------------------------
// HostModFilterSource.

HostModFilterSource::HostModFilterSource(std::unique_ptr<trace::RecordSource> inner,
                                         std::uint32_t modulus, std::uint32_t remainder)
    : inner_(std::move(inner)), modulus_(modulus), remainder_(remainder) {
  WORMS_EXPECTS(inner_ != nullptr && "host-mod filter needs a source");
  WORMS_EXPECTS(modulus_ > 0 && "host-mod filter: modulus must be nonzero");
  WORMS_EXPECTS(remainder_ < modulus_ && "host-mod filter: remainder must be < modulus");
}

std::size_t HostModFilterSource::next_batch(std::span<trace::ConnRecord> out) {
  std::size_t filled = 0;
  while (filled < out.size()) {
    if (buffer_pos_ == buffer_.size()) {
      buffer_.resize(4096);
      const std::size_t produced = inner_->next_batch(buffer_);
      buffer_.resize(produced);
      buffer_pos_ = 0;
      if (produced == 0) break;
    }
    while (buffer_pos_ < buffer_.size() && filled < out.size()) {
      const trace::ConnRecord& record = buffer_[buffer_pos_++];
      if (record.source_host % modulus_ == remainder_) out[filled++] = record;
    }
  }
  return filled;
}

}  // namespace worms::fleet::net
