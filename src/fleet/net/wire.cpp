#include "fleet/net/wire.hpp"

#include <cstdio>
#include <cstring>
#include <utility>

#include "fleet/checkpoint.hpp"
#include "support/check.hpp"
#include "trace/binary_io.hpp"

namespace worms::fleet::net {

namespace {

/// Little-endian field access into a raw header (mirrors BinaryWriter's
/// encoding without requiring a contiguous parse).
template <typename T>
[[nodiscard]] T get_le(const char* p) noexcept {
  T v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    v |= static_cast<T>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

const char* to_string(FrameType type) noexcept {
  switch (type) {
    case FrameType::Hello: return "hello";
    case FrameType::Welcome: return "welcome";
    case FrameType::Records: return "records";
    case FrameType::Alert: return "alert";
    case FrameType::Checkpoint: return "checkpoint";
    case FrameType::Bye: return "bye";
    case FrameType::StatsQuery: return "stats_query";
    case FrameType::StatsReport: return "stats_report";
  }
  return "unknown";
}

bool frame_type_known(std::uint8_t raw) noexcept {
  return raw >= static_cast<std::uint8_t>(FrameType::Hello) &&
         raw <= static_cast<std::uint8_t>(FrameType::StatsReport);
}

std::string encode_frame(FrameType type, std::string_view payload) {
  WORMS_EXPECTS(payload.size() <= kMaxFramePayload && "frame payload exceeds kMaxFramePayload");
  BinaryWriter out;
  out.put_u32(kFrameMagic);
  out.put_u8(kFrameVersion);
  out.put_u8(static_cast<std::uint8_t>(type));
  out.put_u16(0);  // reserved
  out.put_u32(static_cast<std::uint32_t>(payload.size()));
  out.put_u64(trace::wtrace_checksum(payload.data(), payload.size()));
  std::string frame = out.buffer();
  frame.append(payload);
  return frame;
}

void FrameDecoder::append(const char* data, std::size_t size) {
  if (poisoned_) return;  // connection is dead; don't buffer what we won't parse
  // Compact the consumed prefix before growing: the buffer never holds more
  // than one maximal frame plus whatever the last read appended.
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > (64u << 10) && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data, size);
}

FrameDecoder::Result FrameDecoder::fail(DeadLetterReason reason, std::string detail) {
  poisoned_ = true;
  Result r;
  r.status = Status::Error;
  r.reason = reason;
  r.detail = std::move(detail);
  return r;
}

FrameDecoder::Result FrameDecoder::next() {
  if (poisoned_) return {};
  const std::size_t available = buffer_.size() - consumed_;
  const char* p = buffer_.data() + consumed_;
  if (available < kFrameHeaderBytes) {
    if (finished_ && available > 0) {
      return fail(DeadLetterReason::FrameTruncated,
                  "stream ended inside a frame header (" + std::to_string(available) +
                      " of " + std::to_string(kFrameHeaderBytes) + " bytes)");
    }
    return {};
  }

  const std::uint32_t magic = get_le<std::uint32_t>(p);
  if (magic != kFrameMagic) {
    return fail(DeadLetterReason::FrameBadMagic,
                "bad frame magic 0x" + [magic] {
                  char hex[9];
                  std::snprintf(hex, sizeof hex, "%08X", magic);
                  return std::string(hex);
                }());
  }
  const std::uint8_t version = static_cast<std::uint8_t>(p[4]);
  if (version != kFrameVersion) {
    return fail(DeadLetterReason::FrameBadMagic,
                "unsupported frame version " + std::to_string(version));
  }
  const std::uint8_t raw_type = static_cast<std::uint8_t>(p[5]);
  if (!frame_type_known(raw_type)) {
    return fail(DeadLetterReason::FrameBadMagic,
                "unknown frame type " + std::to_string(raw_type));
  }
  if (get_le<std::uint16_t>(p + 6) != 0) {
    return fail(DeadLetterReason::FrameBadMagic, "nonzero reserved header field");
  }
  const std::uint32_t length = get_le<std::uint32_t>(p + 8);
  if (length > kMaxFramePayload) {
    return fail(DeadLetterReason::FrameOversized,
                "length prefix " + std::to_string(length) + " exceeds limit " +
                    std::to_string(kMaxFramePayload));
  }
  if (available < kFrameHeaderBytes + length) {
    if (finished_) {
      return fail(DeadLetterReason::FrameTruncated,
                  "stream ended inside a " + std::string(to_string(static_cast<FrameType>(
                      raw_type))) + " payload (" +
                      std::to_string(available - kFrameHeaderBytes) + " of " +
                      std::to_string(length) + " bytes)");
    }
    return {};
  }
  const std::uint64_t want = get_le<std::uint64_t>(p + 12);
  const std::uint64_t got = trace::wtrace_checksum(p + kFrameHeaderBytes, length);
  if (want != got) {
    return fail(DeadLetterReason::FrameChecksum,
                std::string("payload checksum mismatch on a ") +
                    to_string(static_cast<FrameType>(raw_type)) + " frame");
  }

  Result r;
  r.status = Status::Ready;
  r.frame.type = static_cast<FrameType>(raw_type);
  r.frame.payload.assign(p + kFrameHeaderBytes, length);
  consumed_ += kFrameHeaderBytes + length;
  ++frames_decoded_;
  return r;
}

// ---------------------------------------------------------------------------
// Payloads.

std::string encode_hello(const HelloPayload& hello) {
  BinaryWriter out;
  out.put_u64(hello.client_id);
  out.put_u8(static_cast<std::uint8_t>(hello.kind));
  return out.buffer();
}

HelloPayload decode_hello(std::string_view payload) {
  BinaryReader in(payload);
  HelloPayload hello;
  hello.client_id = in.get_u64();
  const std::uint8_t kind = in.get_u8();
  WORMS_EXPECTS(kind <= 1 && "hello payload: unknown connection kind");
  hello.kind = static_cast<HelloPayload::Kind>(kind);
  WORMS_EXPECTS(in.remaining() == 0 && "hello payload: trailing bytes");
  return hello;
}

std::string encode_welcome(const WelcomePayload& welcome) {
  BinaryWriter out;
  out.put_u64(welcome.resume_position);
  return out.buffer();
}

WelcomePayload decode_welcome(std::string_view payload) {
  BinaryReader in(payload);
  WelcomePayload welcome;
  welcome.resume_position = in.get_u64();
  WORMS_EXPECTS(in.remaining() == 0 && "welcome payload: trailing bytes");
  return welcome;
}

std::string encode_records(std::span<const trace::ConnRecord> records,
                           std::uint64_t node_id, std::uint64_t stream_position) {
  BinaryWriter stamp;
  stamp.put_u64(node_id);
  stamp.put_u64(stream_position);
  std::string payload = stamp.buffer();
  const std::size_t base = payload.size();
  payload.resize(base + records.size() * trace::kWtraceRecordBytes);
  char* out = payload.data() + base;
  for (const trace::ConnRecord& r : records) {
    trace::encode_wtrace_record(r, out);
    out += trace::kWtraceRecordBytes;
  }
  return payload;
}

RecordsPayload decode_records(std::string_view payload) {
  WORMS_EXPECTS(payload.size() >= 16 && "records payload: missing provenance stamp");
  BinaryReader in(payload.substr(0, 16));
  RecordsPayload batch;
  batch.node_id = in.get_u64();
  batch.stream_position = in.get_u64();
  const std::string_view images = payload.substr(16);
  WORMS_EXPECTS(images.size() % trace::kWtraceRecordBytes == 0 &&
                "records payload is not a whole number of record images");
  batch.records.resize(images.size() / trace::kWtraceRecordBytes);
  const char* raw = images.data();
  for (trace::ConnRecord& r : batch.records) {
    r = trace::decode_wtrace_record(raw);
    raw += trace::kWtraceRecordBytes;
  }
  return batch;
}

std::string encode_alerts(std::span<const AlertEntry> alerts) {
  BinaryWriter out;
  out.put_u32(static_cast<std::uint32_t>(alerts.size()));
  for (const AlertEntry& a : alerts) {
    out.put_u32(a.host);
    out.put_f64(a.removal_time);
  }
  return out.buffer();
}

std::vector<AlertEntry> decode_alerts(std::string_view payload) {
  BinaryReader in(payload);
  const std::uint32_t count = in.get_u32();
  WORMS_EXPECTS(payload.size() == 4 + static_cast<std::size_t>(count) * 12 &&
                "alert payload size disagrees with its count");
  std::vector<AlertEntry> alerts(count);
  for (AlertEntry& a : alerts) {
    a.host = in.get_u32();
    a.removal_time = in.get_f64();
  }
  return alerts;
}

std::string encode_checkpoint(const CheckpointPayload& checkpoint) {
  BinaryWriter out;
  out.put_u32(static_cast<std::uint32_t>(checkpoint.client_positions.size()));
  for (const auto& [client, position] : checkpoint.client_positions) {
    out.put_u64(client);
    out.put_u64(position);
  }
  out.put_u64(checkpoint.snapshot.size());
  out.put_bytes(checkpoint.snapshot.data(), checkpoint.snapshot.size());
  return out.buffer();
}

CheckpointPayload decode_checkpoint(std::string_view payload) {
  BinaryReader in(payload);
  CheckpointPayload checkpoint;
  const std::uint32_t clients = in.get_u32();
  checkpoint.client_positions.reserve(clients);
  for (std::uint32_t i = 0; i < clients; ++i) {
    const std::uint64_t client = in.get_u64();
    const std::uint64_t position = in.get_u64();
    checkpoint.client_positions.emplace_back(client, position);
  }
  const std::uint64_t snapshot_size = in.get_u64();
  WORMS_EXPECTS(in.remaining() == snapshot_size &&
                "checkpoint payload size disagrees with its snapshot length");
  checkpoint.snapshot.resize(snapshot_size);
  in.get_bytes(checkpoint.snapshot.data(), snapshot_size);
  return checkpoint;
}

std::string encode_bye(const ByePayload& bye) {
  BinaryWriter out;
  out.put_u64(bye.records_sent);
  return out.buffer();
}

ByePayload decode_bye(std::string_view payload) {
  BinaryReader in(payload);
  ByePayload bye;
  bye.records_sent = in.get_u64();
  WORMS_EXPECTS(in.remaining() == 0 && "bye payload: trailing bytes");
  return bye;
}

namespace {

void put_samples(BinaryWriter& out, const std::vector<StatsSample>& samples) {
  out.put_u32(static_cast<std::uint32_t>(samples.size()));
  for (const StatsSample& s : samples) {
    WORMS_EXPECTS(s.name.size() <= 0xFFFF && "stats sample name too long");
    out.put_u16(static_cast<std::uint16_t>(s.name.size()));
    out.put_bytes(s.name.data(), s.name.size());
    out.put_f64(s.value);
  }
}

[[nodiscard]] std::vector<StatsSample> get_samples(BinaryReader& in) {
  const std::uint32_t count = in.get_u32();
  WORMS_EXPECTS(in.remaining() >= static_cast<std::size_t>(count) * 10 &&
                "stats report: sample count disagrees with payload size");
  std::vector<StatsSample> samples(count);
  for (StatsSample& s : samples) {
    const std::uint16_t len = in.get_u16();
    WORMS_EXPECTS(in.remaining() >= static_cast<std::size_t>(len) + 8 &&
                  "stats report: sample name runs past the payload");
    s.name.resize(len);
    in.get_bytes(s.name.data(), len);
    s.value = in.get_f64();
  }
  return samples;
}

}  // namespace

std::string encode_stats_report(const StatsReportPayload& report) {
  WORMS_EXPECTS(report.shard_backend.size() == report.shard_health.size() &&
                report.shard_backend.size() == report.queue_depth.size() &&
                "stats report: per-shard vectors disagree on shard count");
  BinaryWriter out;
  out.put_u64(report.node_id);
  out.put_u64(report.records_fed);
  out.put_u64(report.checkpoints_written);
  out.put_u64(report.checkpoint_position);
  out.put_u8(report.counter_backend);
  out.put_u8(report.promoted);
  out.put_u32(static_cast<std::uint32_t>(report.shard_backend.size()));
  for (std::size_t i = 0; i < report.shard_backend.size(); ++i) {
    out.put_u8(report.shard_backend[i]);
    out.put_u8(report.shard_health[i]);
    out.put_u64(report.queue_depth[i]);
  }
  out.put_u64(report.dead_letters_malformed);
  out.put_u64(report.dead_letters_out_of_order);
  out.put_u64(report.dead_letters_duplicate);
  out.put_u64(report.dead_letters_overflow);
  put_samples(out, report.counters);
  put_samples(out, report.gauges);
  return out.buffer();
}

StatsReportPayload decode_stats_report(std::string_view payload) {
  BinaryReader in(payload);
  StatsReportPayload report;
  report.node_id = in.get_u64();
  report.records_fed = in.get_u64();
  report.checkpoints_written = in.get_u64();
  report.checkpoint_position = in.get_u64();
  report.counter_backend = in.get_u8();
  report.promoted = in.get_u8();
  const std::uint32_t shards = in.get_u32();
  WORMS_EXPECTS(in.remaining() >= static_cast<std::size_t>(shards) * 10 &&
                "stats report: shard count disagrees with payload size");
  report.shard_backend.resize(shards);
  report.shard_health.resize(shards);
  report.queue_depth.resize(shards);
  for (std::uint32_t i = 0; i < shards; ++i) {
    report.shard_backend[i] = in.get_u8();
    report.shard_health[i] = in.get_u8();
    report.queue_depth[i] = in.get_u64();
  }
  report.dead_letters_malformed = in.get_u64();
  report.dead_letters_out_of_order = in.get_u64();
  report.dead_letters_duplicate = in.get_u64();
  report.dead_letters_overflow = in.get_u64();
  report.counters = get_samples(in);
  report.gauges = get_samples(in);
  WORMS_EXPECTS(in.remaining() == 0 && "stats report payload: trailing bytes");
  return report;
}

}  // namespace worms::fleet::net
