#include "fleet/net/metrics_http.hpp"

#include <chrono>
#include <string>
#include <string_view>

#include "obs/registry.hpp"
#include "support/check.hpp"

namespace worms::fleet::net {

namespace {

constexpr std::chrono::milliseconds kAcceptSlice{100};
constexpr std::chrono::milliseconds kIoTimeout{2000};
/// A scrape request line fits in well under 1 KiB; a client that sends more
/// before its first line break is not speaking HTTP at us.
constexpr std::size_t kMaxRequestBytes = 4096;

std::string make_response(int status, std::string_view reason, std::string_view content_type,
                          std::string_view body) {
  std::string response = "HTTP/1.0 " + std::to_string(status) + " " + std::string(reason) + "\r\n";
  response += "Content-Type: " + std::string(content_type) + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  return response;
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(obs::Registry& registry, const Endpoint& listen)
    : registry_(registry) {
  std::string error;
  auto listener = TcpListener::bind(listen, &error);
  if (!listener) {
    throw support::PreconditionError("metrics: cannot listen on " + listen.to_string() + ": " +
                                     error);
  }
  listener_ = std::move(*listener);
  server_ = std::thread(&MetricsHttpServer::serve_loop, this);
}

MetricsHttpServer::~MetricsHttpServer() { stop(); }

void MetricsHttpServer::stop() {
  stop_.store(true, std::memory_order_release);
  if (server_.joinable()) server_.join();
  listener_.close();
}

void MetricsHttpServer::serve_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    auto stream = listener_.accept(kAcceptSlice);
    if (!stream) continue;

    // Read until the end of the request line; HTTP/1.0 headers that follow
    // are irrelevant to a one-resource server.
    std::string request;
    char buffer[1024];
    while (request.find('\n') == std::string::npos && request.size() < kMaxRequestBytes) {
      const TcpStream::ReadResult read = stream->read_some(buffer, sizeof buffer, kIoTimeout);
      if (read.status != IoStatus::Ok) break;
      request.append(buffer, read.bytes);
    }
    const std::size_t line_end = request.find('\n');
    if (line_end == std::string::npos) continue;  // no request line: drop silently

    std::string_view line(request.data(), line_end);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    const std::size_t method_end = line.find(' ');
    const std::size_t target_end =
        method_end == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', method_end + 1);
    const std::string_view method = line.substr(0, method_end);
    const std::string_view target = method_end == std::string_view::npos
                                        ? std::string_view{}
                                        : line.substr(method_end + 1, target_end - method_end - 1);

    std::string response;
    if (method_end == std::string_view::npos || target_end == std::string_view::npos) {
      // Not `METHOD TARGET VERSION` shaped at all.
      response = make_response(400, "Bad Request", "text/plain", "bad request line\n");
    } else if (method != "GET") {
      response = make_response(405, "Method Not Allowed", "text/plain", "method not allowed\n");
    } else if (target != "/metrics") {
      response = make_response(404, "Not Found", "text/plain", "only /metrics lives here\n");
    } else {
      response = make_response(200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                               obs::Registry::render_prometheus(registry_.snapshot()));
    }
    (void)stream->write_all(response, kIoTimeout);
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    stream->close();
  }
}

}  // namespace worms::fleet::net
