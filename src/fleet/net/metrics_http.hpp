// Live /metrics scrape endpoint (DESIGN.md §14).
//
// A deliberately minimal HTTP/1.0 server with exactly one resource:
// `GET /metrics` renders the registry's current snapshot in Prometheus text
// exposition format (text/plain; version=0.0.4).  Everything else is a 404,
// anything that is not a GET is a 405, and every response closes the
// connection — no keep-alive, no chunking, no headers parsed beyond the
// request line.  That is the whole protocol a Prometheus scraper (or
// `curl`, or cmake's file(DOWNLOAD)) needs, and it reuses the fleet socket
// layer's bounded-timeout discipline so a stuck scraper can never wedge the
// serving thread.
//
// The snapshot is taken per request from the shared atomic instruments, so
// scraping is safe while ingest is live — same guarantee as
// Registry::snapshot() everywhere else.  One serving thread handles
// requests sequentially; scrape traffic is one request per interval, not a
// web workload.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "fleet/net/socket.hpp"

namespace worms::obs {
class Registry;
}

namespace worms::fleet::net {

/// Serves GET /metrics for one Registry until destroyed.  Binding failures
/// throw support::PreconditionError (a scrape port that cannot bind is a
/// configuration error, not something to silently skip).
class MetricsHttpServer {
 public:
  MetricsHttpServer(obs::Registry& registry, const Endpoint& listen);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// The bound port (== listen.port unless that was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

  /// Requests answered so far (any status).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Stops accepting and joins the serving thread.  Idempotent; the
  /// destructor calls it.
  void stop();

 private:
  void serve_loop();

  obs::Registry& registry_;
  TcpListener listener_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> requests_served_{0};
  std::thread server_;
};

}  // namespace worms::fleet::net
