// Wire framing for the distributed containment fleet (DESIGN.md §12).
//
// Everything that crosses a node boundary — record batches, contained-host
// alerts, checkpoint replication — travels in one frame shape: a fixed
// 20-byte header carrying magic/version/type, a length prefix, and an
// FNV-1a-64 checksum over the payload, followed by the payload itself.
// TCP guarantees ordered bytes, not sane bytes: a peer speaking a different
// protocol, a half-written buffer from a killed process, or a flipped bit in
// transit must all be *detected and quarantined*, never fed to the pipeline.
// Every decode failure maps onto a DeadLetterReason so the receiving node's
// dead-letter channel accounts for it per reason, exactly like a malformed
// trace record (ISSUE 8 satellite).
//
// Header layout (little-endian, kFrameHeaderBytes = 20):
//
//   offset  size  field
//        0     4  magic 'WFN1' (0x314E4657 as a LE u32)
//        4     1  protocol version (currently 1)
//        5     1  frame type (FrameType)
//        6     2  reserved, must be zero
//        8     4  payload length (<= kMaxFramePayload)
//       12     8  payload checksum (trace::wtrace_checksum)
//
// Record payloads reuse the `.wtrace` 16-byte record wire image, so a record
// batch on the wire is bit-identical to the same records in a trace file —
// one codec, one golden fixture, one checksum routine.
//
// FrameDecoder is a pure incremental parser (bytes in, frames or typed
// errors out) with no socket anywhere near it, so every protocol violation
// is unit-testable without a network.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "fleet/dead_letter.hpp"
#include "trace/record.hpp"

namespace worms::fleet::net {

/// 'WFN1' — worms fleet network frame.
inline constexpr std::uint32_t kFrameMagic = 0x314E4657u;
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 20;
/// Upper bound on a payload the receiver will buffer.  Checkpoint frames are
/// the largest legitimate traffic (a snapshot of every host's counter);
/// 64 MiB covers ~1M exact-counter hosts with headroom.  Anything larger is
/// a corrupt or hostile length prefix, dead-lettered without allocation.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum class FrameType : std::uint8_t {
  Hello = 1,       ///< client → server: client id + role, opens every connection
  Welcome = 2,     ///< server → ingest client: resume position for its stream
  Records = 3,     ///< ingest client → server: stamped batch of record images
  Alert = 4,       ///< node → peers: hosts contained since the last flush
  Checkpoint = 5,  ///< primary → replica: client positions + pipeline snapshot
  Bye = 6,         ///< ingest client → server: stream complete, total records
  StatsQuery = 7,  ///< status client → node: request a stats snapshot (empty)
  StatsReport = 8, ///< node → status client: metrics + health snapshot
};

[[nodiscard]] const char* to_string(FrameType type) noexcept;
[[nodiscard]] bool frame_type_known(std::uint8_t raw) noexcept;

struct Frame {
  FrameType type = FrameType::Hello;
  std::string payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

/// Serializes one frame: header (magic, version, type, length, checksum) +
/// payload.  The only producer of valid wire bytes.
[[nodiscard]] std::string encode_frame(FrameType type, std::string_view payload);

/// Incremental frame parser.  append() bytes as they arrive, then drain
/// next() until it reports NeedMore.  A decode error poisons the decoder —
/// the connection's framing is unrecoverable past a bad header, so the
/// caller must dead-letter the reported reason and close the connection.
class FrameDecoder {
 public:
  enum class Status : std::uint8_t {
    NeedMore,  ///< no complete frame buffered (or decoder drained post-error)
    Ready,     ///< `frame` holds the next complete, checksum-valid frame
    Error,     ///< `reason`/`detail` describe the violation; decoder poisoned
  };

  struct Result {
    Status status = Status::NeedMore;
    Frame frame;
    DeadLetterReason reason = DeadLetterReason::FrameBadMagic;
    std::string detail;
  };

  void append(const char* data, std::size_t size);
  void append(std::string_view bytes) { append(bytes.data(), bytes.size()); }

  /// Parses the next frame out of the buffer.  Returns Error exactly once
  /// per violation; afterwards the decoder reports NeedMore forever.
  [[nodiscard]] Result next();

  /// Marks end-of-stream: a partially buffered frame becomes a
  /// FrameTruncated error on the next next() call.
  void finish() noexcept { finished_ = true; }

  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }
  [[nodiscard]] std::uint64_t frames_decoded() const noexcept { return frames_decoded_; }
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size() - consumed_; }

 private:
  [[nodiscard]] Result fail(DeadLetterReason reason, std::string detail);

  std::string buffer_;
  std::size_t consumed_ = 0;  ///< parsed prefix, compacted lazily
  std::uint64_t frames_decoded_ = 0;
  bool finished_ = false;
  bool poisoned_ = false;
};

// ---------------------------------------------------------------------------
// Typed payloads.  Encoders produce the payload only (encode_frame wraps it);
// decoders throw support::PreconditionError on size/shape violations — by the
// time a payload decoder runs, the frame checksum already passed, so a shape
// violation means a sender bug, not line noise.

struct HelloPayload {
  /// Role of the connecting socket, from the receiver's point of view.
  enum class Kind : std::uint8_t { Ingest = 0, Peer = 1 };

  std::uint64_t client_id = 0;
  Kind kind = Kind::Ingest;

  friend bool operator==(const HelloPayload&, const HelloPayload&) = default;
};

struct WelcomePayload {
  /// Records of this client's stream the server has already fed; the client
  /// skips exactly this many and resumes — the single mechanism behind
  /// initial connect, reconnect-after-drop, and failover to a promoted
  /// replica.
  std::uint64_t resume_position = 0;

  friend bool operator==(const WelcomePayload&, const WelcomePayload&) = default;
};

/// One contained host, gossiped to peers.
struct AlertEntry {
  std::uint32_t host = 0;
  double removal_time = 0.0;  ///< trace time of the removal verdict

  friend bool operator==(const AlertEntry&, const AlertEntry&) = default;
};

struct CheckpointPayload {
  /// (client id, records fed) per ingest client the primary has seen, so the
  /// promoted replica can issue correct Welcome resume positions.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> client_positions;
  /// Raw pipeline snapshot (ContainmentPipeline::snapshot_blob()).
  std::string snapshot;

  friend bool operator==(const CheckpointPayload&, const CheckpointPayload&) = default;
};

struct ByePayload {
  std::uint64_t records_sent = 0;  ///< client's final stream position

  friend bool operator==(const ByePayload&, const ByePayload&) = default;
};

/// A record batch plus its provenance stamp: which node shipped it and where
/// in that node's stream the batch starts.  The stamp is what lets a merged
/// fleet verdict table say which ingest stream produced each observation.
struct RecordsPayload {
  std::uint64_t node_id = 0;
  std::uint64_t stream_position = 0;  ///< stream index of records.front()
  std::vector<trace::ConnRecord> records;

  friend bool operator==(const RecordsPayload&, const RecordsPayload&) = default;
};

/// One named sample inside a StatsReport (counter value or gauge value).
struct StatsSample {
  std::string name;  ///< full metric name, labels inline (`fleet_x{k="v"}`)
  double value = 0.0;

  friend bool operator==(const StatsSample&, const StatsSample&) = default;
};

/// Node → status client snapshot: identity, checkpoint/failover state,
/// per-shard health, dead-letter accounting, and the node's whole metric
/// registry flattened to named samples so `wormctl status` can merge nodes
/// with MetricsSnapshot::merge semantics (counters add, gauges max).
struct StatsReportPayload {
  std::uint64_t node_id = 0;
  std::uint64_t records_fed = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoint_position = 0;  ///< stream position of last checkpoint
  std::uint8_t counter_backend = 0;       ///< configured fleet::CounterBackend
  std::uint8_t promoted = 0;              ///< 1 once a replica took over as primary
  std::vector<std::uint8_t> shard_backend;  ///< effective degrade rung per shard
  std::vector<std::uint8_t> shard_health;   ///< fleet::ShardHealth per shard
  std::vector<std::uint64_t> queue_depth;   ///< live task-queue depth per shard
  std::uint64_t dead_letters_malformed = 0;
  std::uint64_t dead_letters_out_of_order = 0;
  std::uint64_t dead_letters_duplicate = 0;
  std::uint64_t dead_letters_overflow = 0;
  std::vector<StatsSample> counters;
  std::vector<StatsSample> gauges;

  friend bool operator==(const StatsReportPayload&, const StatsReportPayload&) = default;
};

[[nodiscard]] std::string encode_hello(const HelloPayload& hello);
[[nodiscard]] HelloPayload decode_hello(std::string_view payload);

[[nodiscard]] std::string encode_welcome(const WelcomePayload& welcome);
[[nodiscard]] WelcomePayload decode_welcome(std::string_view payload);

/// Record batches are a 16-byte {node id, stream position} provenance stamp
/// followed by .wtrace record images back to back (16 bytes each).
[[nodiscard]] std::string encode_records(std::span<const trace::ConnRecord> records,
                                         std::uint64_t node_id,
                                         std::uint64_t stream_position);
[[nodiscard]] RecordsPayload decode_records(std::string_view payload);

[[nodiscard]] std::string encode_alerts(std::span<const AlertEntry> alerts);
[[nodiscard]] std::vector<AlertEntry> decode_alerts(std::string_view payload);

[[nodiscard]] std::string encode_checkpoint(const CheckpointPayload& checkpoint);
[[nodiscard]] CheckpointPayload decode_checkpoint(std::string_view payload);

[[nodiscard]] std::string encode_bye(const ByePayload& bye);
[[nodiscard]] ByePayload decode_bye(std::string_view payload);

/// StatsQuery frames carry an empty payload; only the report has a codec.
[[nodiscard]] std::string encode_stats_report(const StatsReportPayload& report);
[[nodiscard]] StatsReportPayload decode_stats_report(std::string_view payload);

}  // namespace worms::fleet::net
