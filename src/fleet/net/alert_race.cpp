#include "fleet/net/alert_race.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "fleet/net/wire.hpp"
#include "support/check.hpp"

namespace worms::fleet::net {

namespace {

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

void AlertRaceConfig::validate() const {
  WORMS_EXPECTS(hosts > 0 && "alert race: hosts must be nonzero");
  WORMS_EXPECTS(address_space >= hosts && "alert race: address space must cover the hosts");
  WORMS_EXPECTS(nodes > 0 && "alert race: need at least one monitor");
  WORMS_EXPECTS(budget > 0 && "alert race: budget must be nonzero");
  WORMS_EXPECTS(phi > 0.0 && phi <= 1.0 && "alert race: phi must be in (0, 1]");
  WORMS_EXPECTS(initial_infected > 0 && initial_infected <= hosts &&
                "alert race: initial infected must be in [1, hosts]");
  WORMS_EXPECTS(scan_rate > 0 && "alert race: scan rate must be nonzero");
  WORMS_EXPECTS(steps > 0 && "alert race: steps must be nonzero");
}

AlertRaceResult run_alert_race(const AlertRaceConfig& config) {
  config.validate();
  const std::uint32_t N = config.hosts;
  const std::uint32_t K = config.nodes;
  const std::uint32_t flag_at =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
                                     std::ceil(config.phi * static_cast<double>(config.budget))));

  // infected_step[h] < 0: never infected; otherwise the step it was infected
  // (a host starts scanning the step AFTER its infection).
  std::vector<std::int64_t> infected_step(N, -1);
  std::vector<std::uint64_t> rng(N);
  for (std::uint32_t h = 0; h < N; ++h) {
    rng[h] = splitmix64(config.seed ^ (0x9E3779B97F4A7C15ULL * (h + 1)));
  }
  // observed[k*N + h]: scans from h seen (and not dropped) by monitor k.
  std::vector<std::uint32_t> observed(static_cast<std::size_t>(K) * N, 0);
  std::vector<std::uint8_t> blocked(static_cast<std::size_t>(K) * N, 0);
  std::vector<std::uint8_t> blocked_count(N, 0);  ///< monitors blocking h
  std::vector<std::uint8_t> alert_sent(N, 0);     ///< fleet-wide alert dedupe

  AlertRaceResult result;
  result.total_infected = config.initial_infected;
  for (std::uint32_t h = 0; h < config.initial_infected; ++h) infected_step[h] = 0;

  // Alerts in flight: one batch per send step, delivered gossip_delay later.
  struct PendingBatch {
    std::uint32_t deliver_step = 0;
    std::string payload;  ///< encode_alerts() image, decoded at delivery
  };
  std::vector<PendingBatch> in_flight;
  std::size_t next_delivery = 0;

  for (std::uint32_t step = 1; step <= config.steps; ++step) {
    // Deliver due alerts: every monitor pre-contains each announced host.
    // The batch crosses the same wire codec the live gossip path uses.
    while (next_delivery < in_flight.size() &&
           in_flight[next_delivery].deliver_step <= step) {
      const std::vector<AlertEntry> alerts = decode_alerts(in_flight[next_delivery].payload);
      for (const AlertEntry& alert : alerts) {
        for (std::uint32_t k = 0; k < K; ++k) {
          std::uint8_t& b = blocked[static_cast<std::size_t>(k) * N + alert.host];
          if (b == 0) {
            b = 1;
            ++blocked_count[alert.host];
            ++result.pre_containments;
          }
        }
      }
      ++next_delivery;
    }

    std::vector<AlertEntry> outgoing;
    bool any_active = false;
    for (std::uint32_t h = 0; h < N; ++h) {
      if (infected_step[h] < 0 || infected_step[h] >= step) continue;
      if (blocked_count[h] == K) continue;  // silenced at every monitor
      any_active = true;
      for (std::uint32_t s = 0; s < config.scan_rate; ++s) {
        // Each host draws from its own stream: blocking it (or anyone else)
        // never shifts another host's scan sequence, so gossip on/off runs
        // differ only through what the monitors drop.
        rng[h] = splitmix64(rng[h]);
        const std::uint64_t address = rng[h] % config.address_space;
        const std::uint32_t monitor = static_cast<std::uint32_t>(address % K);
        ++result.scans_attempted;
        if (blocked[static_cast<std::size_t>(monitor) * N + h] != 0) {
          ++result.scans_blocked;
          continue;
        }
        std::uint32_t& seen = observed[static_cast<std::size_t>(monitor) * N + h];
        ++seen;
        if (address < N && infected_step[address] < 0) {
          infected_step[address] = step;  // starts scanning next step
          ++result.new_infections;
          ++result.total_infected;
        }
        if (config.gossip && seen >= flag_at && alert_sent[h] == 0) {
          alert_sent[h] = 1;
          outgoing.push_back(AlertEntry{h, static_cast<double>(step)});
          ++result.alerts_gossiped;
          if (result.first_alert_step == 0) result.first_alert_step = step;
        }
        if (seen >= config.budget &&
            blocked[static_cast<std::size_t>(monitor) * N + h] == 0) {
          blocked[static_cast<std::size_t>(monitor) * N + h] = 1;
          ++blocked_count[h];
          ++result.local_containments;
        }
      }
    }
    if (!outgoing.empty()) {
      in_flight.push_back(PendingBatch{step + config.gossip_delay, encode_alerts(outgoing)});
    }
    if (!any_active && next_delivery == in_flight.size()) break;  // epidemic exhausted
  }

  for (std::uint32_t h = 0; h < N; ++h) {
    if (blocked_count[h] == K) ++result.hosts_fully_blocked;
  }
  return result;
}

}  // namespace worms::fleet::net
