// Minimal POSIX TCP wrappers with bounded timeouts (DESIGN.md §12).
//
// The fleet protocol's robustness contract starts here: every connect, read,
// and write carries an explicit deadline, enforced with poll() on
// non-blocking sockets, so a hung peer can stall a connection — never a
// thread forever.  No DNS (numeric IPv4 plus the "localhost" literal only:
// monitor fleets are configured by address, and a resolver timeout is a
// dependency this layer exists to avoid), no TLS, IPv4 only — the protocol
// above carries its own checksums and the deployments are loopback or
// lab-internal.
//
// Endpoint parsing is strict from_chars, same idiom as every wormctl flag:
// "10.0.0.1:7070" parses, "10.0.0.1:70x0" or a port > 65535 throws
// support::PreconditionError with the offending text.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace worms::fleet::net {

struct Endpoint {
  std::string host = "127.0.0.1";  ///< numeric IPv4 (or "localhost")
  std::uint16_t port = 0;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

/// Parses "HOST:PORT".  Strict: numeric IPv4 or "localhost" for HOST, a
/// from_chars-clean port in [0, 65535].  Throws support::PreconditionError
/// naming the bad field.
[[nodiscard]] Endpoint parse_endpoint(std::string_view text);

/// Parses "HOST:PORT,HOST:PORT,..." (at least one entry).
[[nodiscard]] std::vector<Endpoint> parse_endpoint_list(std::string_view text);

/// Outcome of a read_some() call.
enum class IoStatus : std::uint8_t {
  Ok,       ///< >= 1 byte read
  Eof,      ///< orderly shutdown from the peer
  Timeout,  ///< deadline expired with nothing to read
  Error,    ///< socket error (connection reset, etc.)
};

/// A connected TCP stream.  Move-only; closes on destruction.
class TcpStream {
 public:
  TcpStream() = default;
  explicit TcpStream(int fd) noexcept : fd_(fd) {}
  ~TcpStream() { close(); }

  TcpStream(TcpStream&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Non-blocking connect with a poll() deadline.  nullopt on failure or
  /// timeout; `error` (if non-null) receives a diagnostic.
  [[nodiscard]] static std::optional<TcpStream> connect(const Endpoint& endpoint,
                                                        std::chrono::milliseconds timeout,
                                                        std::string* error = nullptr);

  struct ReadResult {
    IoStatus status = IoStatus::Error;
    std::size_t bytes = 0;
  };

  /// Reads whatever is available (>= 1 byte) within the deadline.
  [[nodiscard]] ReadResult read_some(char* out, std::size_t capacity,
                                     std::chrono::milliseconds timeout);

  /// Writes the whole buffer, polling for writability between partial
  /// writes; `timeout` bounds each poll, not the total.  False on any error
  /// or expired deadline (the stream should then be abandoned).
  [[nodiscard]] bool write_all(std::string_view data, std::chrono::milliseconds timeout);

  /// Half-close: signals end-of-stream to the peer, reads still work.
  void shutdown_send() noexcept;

  void close() noexcept;
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

/// A listening TCP socket.  Bind with port 0 for an ephemeral port (tests);
/// port() reports the actual one.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { close(); }

  TcpListener(TcpListener&& other) noexcept : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// SO_REUSEADDR bind + listen.  nullopt on failure (port in use, bad host).
  [[nodiscard]] static std::optional<TcpListener> bind(const Endpoint& endpoint,
                                                       std::string* error = nullptr);

  /// Accepts one connection within the deadline; nullopt on timeout.
  [[nodiscard]] std::optional<TcpStream> accept(std::chrono::milliseconds timeout);

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace worms::fleet::net
