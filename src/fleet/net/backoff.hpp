// Exponential backoff with deterministic jitter for fleet reconnects.
//
// A node whose peer vanishes must neither hammer the address (a thundering
// herd of monitors reconnecting in lockstep is its own small worm) nor give
// up while the peer is merely restarting.  The standard answer is exponential
// backoff with jitter and a retry cap; the fleet twist is that the jitter is
// *deterministic* — splitmix64 over (seed, stream salt, attempt) — so a test
// that scripts a netdrop fault observes the exact same reconnect schedule on
// every run.  Different links get different salts, so a fleet of clients
// still de-synchronizes.
//
// Delay for attempt k (0-based): uniform in [window/2, window] where
// window = min(cap, base << k).  Half-floor jitter keeps some spacing
// guarantee (pure full jitter can draw ~0 repeatedly); the deterministic
// draw keeps reruns identical.
#pragma once

#include <chrono>
#include <cstdint>

namespace worms::fleet::net {

struct RetryPolicy {
  std::chrono::milliseconds base{20};   ///< first-retry window
  std::chrono::milliseconds cap{2000};  ///< window ceiling
  /// Consecutive failures tolerated per endpoint before the caller moves on
  /// (failover) or degrades to local-only containment.
  unsigned max_retries = 8;
  std::uint64_t jitter_seed = 0x0BACC0FFULL;

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy, std::uint64_t stream_salt = 0) noexcept
      : policy_(policy), salt_(stream_salt) {}

  /// Delay to sleep before the next attempt; advances the attempt counter.
  [[nodiscard]] std::chrono::milliseconds next_delay() noexcept {
    const unsigned attempt = attempt_++;
    std::uint64_t window = static_cast<std::uint64_t>(policy_.base.count());
    const std::uint64_t cap = static_cast<std::uint64_t>(policy_.cap.count());
    // Shift with saturation: window doubles per attempt until the cap.
    for (unsigned i = 0; i < attempt && window < cap; ++i) window <<= 1;
    if (window > cap) window = cap;
    if (window == 0) return std::chrono::milliseconds{0};
    const std::uint64_t half = window / 2;
    const std::uint64_t jitter = splitmix64(policy_.jitter_seed ^ salt_ ^ attempt);
    return std::chrono::milliseconds(half + jitter % (window - half + 1));
  }

  /// True once max_retries delays have been handed out without a reset().
  [[nodiscard]] bool exhausted() const noexcept { return attempt_ >= policy_.max_retries; }

  [[nodiscard]] unsigned attempts() const noexcept { return attempt_; }

  /// Success: the next failure starts the schedule over.
  void reset() noexcept { attempt_ = 0; }

 private:
  [[nodiscard]] static std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  RetryPolicy policy_;
  std::uint64_t salt_;
  unsigned attempt_ = 0;
};

}  // namespace worms::fleet::net
