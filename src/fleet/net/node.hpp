// Distributed containment fleet: serve node + ingest client (DESIGN.md §12).
//
// The paper's containment cycle assumes one monitor sees every scan; a real
// deployment shards the view across N monitoring nodes, and the alert about
// a contained host has to *race the worm* to the other nodes (Shakkottai &
// Srikant's P2P alert-dissemination analysis is the reference model).  This
// layer promotes the in-process ContainmentPipeline to that fleet shape:
//
//   ingest client ──Records──► ServeNode ──Alert──► peer ServeNodes
//                               │    ▲                (pre_contain gossip)
//                               │    └─Alert from peers
//                               └──Checkpoint──► designated replica
//
// Robustness contract (the point of this PR):
//   * every socket operation carries a bounded timeout (fleet/net/socket.hpp);
//   * clients reconnect with deterministic exponential backoff + jitter and
//     fail over through their --connect list; a promoted replica answers the
//     same Hello/Welcome resume protocol, so failover is just "reconnect
//     somewhere else";
//   * peer links degrade to local-only containment when a peer stays
//     unreachable past the retry cap — alerts are dropped and counted, the
//     ingest hot path never blocks on a peer;
//   * undecodable frames (bad magic, truncation, checksum, oversized length)
//     land in a node-level DeadLetterChannel with per-reason counters, and
//     the offending connection is closed (the client's resume protocol makes
//     that lossless);
//   * periodic checkpoint replication ships the pipeline snapshot plus every
//     client's stream position to a replica, which promotes itself on the
//     first ingest Hello it receives after the primary dies.
//
// Resume protocol: every record the server feeds its pipeline is counted per
// client; Welcome returns that count and the client skips exactly that many
// (post-filter) records of its source.  One mechanism covers initial
// connect (position 0), reconnect after a drop or a corrupt frame (position
// = server's fed count, so nothing is double-counted and nothing is lost),
// and failover to a promoted replica (position = replicated checkpoint's
// count; the suffix replays and verdicts are bit-identical — the
// fleet_checkpoint determinism guarantee, now across processes).
//
// Threading: accept thread + one reader thread per connection + one ingest
// thread owning the pipeline (feed()/pre_contain() are single-producer by
// contract) + one sender thread per peer link.  Readers talk to the ingest
// thread through a BoundedMpscQueue, so backpressure propagates to TCP.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "fleet/bounded_queue.hpp"
#include "fleet/dead_letter.hpp"
#include "fleet/net/backoff.hpp"
#include "fleet/net/socket.hpp"
#include "fleet/net/wire.hpp"
#include "fleet/pipeline.hpp"
#include "trace/record_source.hpp"

namespace worms::fleet::net {

struct NetTimeouts {
  std::chrono::milliseconds connect{2000};
  std::chrono::milliseconds read{5000};   ///< client-side waits (Welcome)
  std::chrono::milliseconds write{5000};  ///< per-poll write budget

  friend bool operator==(const NetTimeouts&, const NetTimeouts&) = default;
};

struct NodeOptions {
  Endpoint listen{"127.0.0.1", 0};  ///< port 0 = ephemeral (tests)
  /// Alert-gossip mesh: outbound links that receive this node's containment
  /// alerts.  Unreachable peers degrade to local-only containment.
  std::vector<Endpoint> peers;
  /// Designated checkpoint replica (also receives alerts iff listed in
  /// `peers`).  Replication is useless without a cadence, so replicate_every
  /// must be nonzero exactly when this is set.
  std::optional<Endpoint> replicate_to;
  std::uint64_t replicate_every = 0;  ///< records between checkpoint replications
  /// Alert flush cadence in fed records; 0 = flush after every record batch.
  std::uint64_t gossip_every = 0;
  /// The node exits once this many ingest clients have completed (Bye) ...
  unsigned expect_clients = 1;
  /// ... and this many inbound peer/replication connections have closed.
  /// Gossip-only listeners set expect_clients=0, expect_peers>=1.
  unsigned expect_peers = 0;
  /// Apply incoming Alert frames as pre_contain (off replays alerts into
  /// counters only — used to measure the gossip-off baseline).
  bool apply_alerts = true;
  NetTimeouts timeouts;
  RetryPolicy retry;  ///< peer-link reconnect schedule
  /// Node identity carried in peer Hello frames, stamped onto StatsReport
  /// replies, and recorded as the provenance column of merged verdicts.
  std::uint64_t node_id = 0;
  /// Pipeline configuration.  `on_removal` is overwritten by the node (it is
  /// the alert hook); `metrics`, if set, also instruments the net layer;
  /// `events`, if set, additionally journals node-level transitions
  /// (ReplicaPromotion, NetQuarantine, net fault clauses).
  PipelineOptions pipeline;
  /// Network fault clauses (netkill/netdrop/netstall) honoured by this node;
  /// worker/record clauses pass through to the pipeline.
  FaultPlan faults;
  std::size_t ingest_queue_capacity = 64;  ///< tasks buffered between readers and ingest
};

/// Everything a serve run reports: the pipeline result plus net accounting.
struct NodeReport {
  PipelineResult result;
  std::uint64_t connections_accepted = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t records_received = 0;
  std::uint64_t alerts_received = 0;   ///< alert entries decoded from peers
  std::uint64_t alerts_sent = 0;       ///< entries enqueued to live peer links
  std::uint64_t alerts_dropped = 0;    ///< entries dropped: dead link / full queue
  std::uint64_t peer_reconnects = 0;   ///< outbound link re-establishments
  std::uint64_t checkpoints_replicated = 0;  ///< sent to the replica
  std::uint64_t checkpoints_stored = 0;      ///< received as a replica
  std::uint64_t connections_dropped = 0;     ///< netdrop fault closures
  std::uint64_t replication_lag_records = 0; ///< fed - last replicated position
  bool promoted_from_replica = false;
  std::uint64_t promoted_position = 0;  ///< records_fed at promotion
  bool degraded_local_only = false;     ///< >= 1 peer link gave up for good
  DeadLetterStats wire_dead_letters;    ///< frame-decode quarantine counters
};

/// One outbound link (alert gossip or checkpoint replication): a bounded
/// frame queue drained by a sender thread that connects lazily, reconnects
/// with backoff, and goes dead — dropping instead of blocking — once the
/// retry budget is spent.  enqueue() is called from the ingest thread and
/// never blocks: that is the "never block the hot path" guarantee.
class PeerLink {
 public:
  struct Config {
    Endpoint endpoint;
    NetTimeouts timeouts;
    RetryPolicy retry;
    std::uint64_t node_id = 0;
    std::size_t queue_capacity = 256;  ///< frames buffered while (re)connecting
  };

  explicit PeerLink(const Config& config);
  ~PeerLink();

  PeerLink(const PeerLink&) = delete;
  PeerLink& operator=(const PeerLink&) = delete;

  /// False when the frame was dropped (dead link or full queue).
  [[nodiscard]] bool enqueue(std::string frame);

  /// Drains the queue, closes the connection, joins the sender.  Idempotent.
  void finish();

  [[nodiscard]] bool dead() const noexcept { return dead_.load(std::memory_order_acquire); }
  [[nodiscard]] std::uint64_t frames_sent() const noexcept {
    return frames_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept {
    return frames_dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const Endpoint& endpoint() const noexcept { return config_.endpoint; }

 private:
  void run();

  Config config_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::string> queue_;
  bool stopping_ = false;
  std::atomic<bool> dead_{false};
  std::atomic<std::uint64_t> frames_sent_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
  std::atomic<std::uint64_t> reconnects_{0};
  std::thread sender_;
};

/// A containment node: listens, ingests record streams into its pipeline,
/// gossips alerts, replicates checkpoints, survives its peers dying.
class ServeNode {
 public:
  /// Binds and starts the accept/ingest threads; throws
  /// support::PreconditionError when the listen endpoint cannot be bound.
  explicit ServeNode(NodeOptions options);
  ~ServeNode();

  ServeNode(const ServeNode&) = delete;
  ServeNode& operator=(const ServeNode&) = delete;

  /// The bound port (== options.listen.port unless that was 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return listener_.port(); }

  /// Replicated checkpoints stored so far (replica role).  A primary's
  /// final checkpoint is on the wire when its wait() returns, but a replica
  /// *processes* it on its ingest thread — a failover client that must land
  /// on that exact checkpoint polls this before connecting.
  [[nodiscard]] std::uint64_t checkpoints_stored() const noexcept {
    return checkpoints_stored_.load(std::memory_order_acquire);
  }

  /// Blocks until the exit condition (expect_clients + expect_peers) is met,
  /// then finishes the pipeline and returns the full report.  Call once.
  [[nodiscard]] NodeReport wait();

  /// Early abort (tests): unblocks wait() regardless of the exit condition.
  void stop();

 private:
  struct Connection;
  struct NodeTask;

  void accept_loop();
  void reader_loop(Connection& conn);
  void ingest_loop();
  void handle_frame(Connection& conn, Frame frame);
  void apply_net_faults_after_frame();
  void ensure_pipeline();
  void maybe_promote();
  void flush_alerts(bool force);
  void maybe_replicate(bool force);
  void note_wire_dead_letter(const Connection& conn, DeadLetterReason reason,
                             std::string detail);
  /// Encoded StatsReport payload for the node's current state.  Ingest
  /// thread only: reads pipeline/ingest-thread state without quiescing.
  [[nodiscard]] std::string build_stats_report();
  [[nodiscard]] bool exit_condition_met() const;

  NodeOptions options_;
  TcpListener listener_;
  DeadLetterChannel wire_dead_letters_;

  std::unique_ptr<BoundedMpscQueue<NodeTask>> tasks_;
  std::unique_ptr<ContainmentPipeline> pipeline_;  ///< ingest thread (then wait())
  std::optional<CheckpointPayload> stored_checkpoint_;  ///< replica role
  std::map<std::uint64_t, std::uint64_t> client_positions_;  ///< ingest thread
  std::unordered_set<std::uint32_t> alerted_;  ///< hosts already pre-contained/announced
  std::uint64_t records_since_gossip_ = 0;
  std::uint64_t last_replicated_position_ = 0;

  std::mutex alerts_mutex_;
  std::vector<AlertEntry> pending_alerts_;  ///< filled by shard workers (on_removal)

  std::vector<std::unique_ptr<PeerLink>> peer_links_;
  PeerLink* replicate_link_ = nullptr;  ///< points into peer_links_
  bool gossip_to_replica_ = false;      ///< replica endpoint also listed in peers

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<bool> stop_{false};
  std::atomic<unsigned> clients_completed_{0};
  std::atomic<unsigned> peers_closed_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> frames_sent_direct_{0};  ///< Welcome/ack frames from readers
  std::atomic<std::uint64_t> connections_dropped_{0};  ///< netdrop fault closures
  mutable std::mutex done_mutex_;
  std::condition_variable done_cv_;

  /// Cursors into the sorted net fault schedules (guarded by fault_mutex_).
  std::mutex fault_mutex_;
  std::size_t next_net_kill_ = 0;
  std::size_t next_net_drop_ = 0;
  std::size_t next_net_stall_ = 0;

  NodeReport report_;  ///< net counters folded in by wait()
  std::string ingest_error_;  ///< first ingest-thread exception; rethrown by wait()
  std::uint64_t alerts_received_ = 0;  ///< ingest thread
  std::uint64_t alerts_sent_ = 0;
  std::uint64_t alerts_dropped_ = 0;
  std::uint64_t records_received_ = 0;
  std::uint64_t checkpoints_replicated_ = 0;
  std::atomic<std::uint64_t> checkpoints_stored_{0};  ///< ingest thread; polled by tests
  bool promoted_ = false;
  std::uint64_t promoted_position_ = 0;

  // Net-layer obs handles (null when uninstrumented).
  obs::Counter* obs_connections_ = nullptr;   ///< fleet_net_connections_accepted_total
  obs::Counter* obs_frames_rx_ = nullptr;     ///< fleet_net_frames_rx_total
  obs::Counter* obs_frames_tx_ = nullptr;     ///< fleet_net_frames_tx_total
  obs::Counter* obs_records_rx_ = nullptr;    ///< fleet_net_records_rx_total
  obs::Counter* obs_alerts_rx_ = nullptr;     ///< fleet_net_alerts_rx_total
  obs::Counter* obs_alerts_tx_ = nullptr;     ///< fleet_net_alerts_tx_total
  obs::Counter* obs_alerts_dropped_ = nullptr;  ///< fleet_net_alerts_dropped_total
  obs::Counter* obs_reconnects_ = nullptr;    ///< fleet_net_reconnects_total
  obs::Counter* obs_replicated_ = nullptr;    ///< fleet_net_checkpoints_replicated_total
  obs::Counter* obs_ckpt_stored_ = nullptr;   ///< fleet_net_checkpoints_stored_total
  obs::Gauge* obs_replication_lag_ = nullptr; ///< fleet_net_replication_lag_records
  obs::Gauge* obs_peers_degraded_ = nullptr;  ///< fleet_net_peers_degraded

  std::thread accept_thread_;
  std::thread ingest_thread_;
  bool waited_ = false;
};

// ---------------------------------------------------------------------------
// Ingest client.

struct IngestOptions {
  /// Failover list, tried in order: when an endpoint's retry budget is spent
  /// the client rotates to the next (the promoted replica in the node-kill
  /// drill).  The whole list exhausting max_retries each, with no Welcome
  /// anywhere, is a hard error.
  std::vector<Endpoint> connect;
  std::uint64_t client_id = 1;
  std::size_t batch_records = 4096;  ///< records per Records frame
  NetTimeouts timeouts;
  RetryPolicy retry;
  /// Client-side fault clauses (netcorrupt) — INDEX counts this client's
  /// sent record-batch frames, across reconnects.
  FaultPlan faults;
};

struct IngestReport {
  std::uint64_t records_sent = 0;    ///< final stream position (distinct records)
  std::uint64_t records_resent = 0;  ///< suffix replays after reconnect/failover
  std::uint64_t frames_sent = 0;     ///< record-batch frames, including resends
  unsigned reconnects = 0;           ///< sessions after the first
  unsigned failovers = 0;            ///< endpoint rotations
  std::string endpoint;              ///< endpoint that served the final session
};

/// Sources are single-pass, but resume needs a rewind: the client re-opens
/// the stream through this factory on every (re)connect and skip()s to the
/// server's position.
using SourceFactory = std::function<std::unique_ptr<trace::RecordSource>()>;

/// Streams the source to the first reachable endpoint, resuming/failing over
/// until the stream completes.  Throws support::PreconditionError when every
/// endpoint's retry budget is exhausted without progress.
[[nodiscard]] IngestReport run_ingest(const IngestOptions& options,
                                      const SourceFactory& make_source);

/// RecordSource adapter keeping only records with
/// source_host % modulus == remainder — how a fleet splits one trace across
/// ingest clients (host-affine, so per-host record order is preserved).
class HostModFilterSource final : public trace::RecordSource {
 public:
  HostModFilterSource(std::unique_ptr<trace::RecordSource> inner, std::uint32_t modulus,
                      std::uint32_t remainder);

  [[nodiscard]] std::size_t next_batch(std::span<trace::ConnRecord> out) override;

 private:
  std::unique_ptr<trace::RecordSource> inner_;
  std::uint32_t modulus_;
  std::uint32_t remainder_;
  std::vector<trace::ConnRecord> buffer_;
  std::size_t buffer_pos_ = 0;
};

}  // namespace worms::fleet::net
