// Fleet-scale streaming containment pipeline.
//
// The paper's containment scheme is an *online* mechanism: per-host distinct-
// destination counters that flag a host at f·M and remove it at the scan
// limit M, with counters reset every containment cycle.  The offline
// TraceAnalyzer::audit_policy replays a sorted in-memory trace through one
// policy instance; this subsystem is the production shape of the same
// decision procedure — a sharded, multi-threaded pipeline that ingests a
// stream of trace::ConnRecord and emits quarantine verdicts plus operational
// metrics while the stream is still flowing.
//
// Architecture (DESIGN.md §6):
//
//   ingest thread ──feed()──► per-shard batch buffers
//        │ shard = source_host % shards
//        ▼
//   BoundedMpscQueue<batch> × N     (blocking backpressure, high-water gauges)
//        ▼
//   shard worker × N: per-host {DistinctCounter, cycle, verdict} state
//        driving one core::ScanCountLimitPolicy per shard (Attempts mode —
//        distinctness is already judged by the counter backend)
//        ▼
//   finish(): close queues, join workers, merge per-shard verdicts sorted by
//        host id, snapshot metrics.
//
// Determinism: records are sharded by source host and each queue is FIFO, so
// every host's records are processed in arrival order by exactly one worker,
// against state only that worker touches.  Per-host outcomes therefore never
// depend on the shard count or on scheduling, and the merged, host-sorted
// ContainmentVerdicts report is bit-identical for any `shards` value —
// verified in tests/fleet_pipeline_test.cpp (including under TSan).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/scan_limit_policy.hpp"
#include "fleet/distinct_counter.hpp"
#include "support/stopwatch.hpp"
#include "trace/record.hpp"

namespace worms::support {
class ThreadPool;
}

namespace worms::fleet {

struct PipelineConfig {
  /// Budget M, cycle length, and check fraction f.  `counting` is ignored:
  /// the pipeline always counts distinct destinations, via `backend`.
  core::ScanCountLimitPolicy::Config policy;
  CounterBackend backend = CounterBackend::Exact;
  int hll_precision = 12;      ///< 2^p bytes/host, ~1.04/sqrt(2^p) rel. error
  unsigned shards = 0;         ///< worker count; 0 = one per hardware thread
  std::size_t batch_size = 1024;     ///< records per queue item
  std::size_t queue_capacity = 64;   ///< batches per shard queue (backpressure)
};

/// One monitored host's outcome.  Times are trace timestamps (sim::SimTime
/// seconds), not wall clock.
struct HostVerdict {
  std::uint32_t host = 0;
  std::uint64_t records_seen = 0;     ///< records processed while the host was up
  std::uint64_t peak_distinct = 0;    ///< max counter value across cycles
  bool flagged = false;               ///< crossed f·M (only meaningful if f < 1)
  sim::SimTime flag_time = 0.0;       ///< first crossing
  bool removed = false;               ///< hit M within a cycle
  sim::SimTime removal_time = 0.0;

  friend bool operator==(const HostVerdict&, const HostVerdict&) = default;
};

struct ContainmentVerdicts {
  std::vector<HostVerdict> hosts;  ///< every host seen, ascending host id
  std::uint32_t hosts_flagged = 0;
  std::uint32_t hosts_removed = 0;

  [[nodiscard]] const HostVerdict* find(std::uint32_t host) const noexcept;
  [[nodiscard]] std::vector<std::uint32_t> removed_hosts() const;

  friend bool operator==(const ContainmentVerdicts&, const ContainmentVerdicts&) = default;
};

struct PipelineMetrics {
  std::uint64_t records_processed = 0;  ///< records ingested via feed()
  std::uint64_t records_suppressed = 0; ///< arrived after their host's removal
  double elapsed_seconds = 0.0;         ///< wall clock, construction → finish()
  double records_per_second = 0.0;
  unsigned shards = 0;
  std::vector<std::size_t> queue_high_water;  ///< per shard, in batches
  std::size_t counter_memory_bytes = 0;       ///< sum of per-host counter footprints
};

struct PipelineResult {
  ContainmentVerdicts verdicts;
  PipelineMetrics metrics;
};

class ContainmentPipeline {
 public:
  /// Spawns the shard workers immediately; feed() may be called right away.
  explicit ContainmentPipeline(const PipelineConfig& config);

  /// Joins the workers (discarding any unprocessed input) if finish() was
  /// never called.
  ~ContainmentPipeline();

  ContainmentPipeline(const ContainmentPipeline&) = delete;
  ContainmentPipeline& operator=(const ContainmentPipeline&) = delete;

  /// Ingests records in stream order.  Timestamps must be non-decreasing
  /// *per source host* (a globally time-sorted stream qualifies); violations
  /// surface as PreconditionError from finish().  Blocks when a shard queue
  /// is full — backpressure, not data loss.
  void feed(const trace::ConnRecord& record);
  void feed(const std::vector<trace::ConnRecord>& records);

  /// Flushes, drains, joins, and reports.  Call exactly once; the pipeline
  /// cannot be fed afterwards.  Rethrows the first worker error, if any.
  [[nodiscard]] PipelineResult finish();

  [[nodiscard]] const PipelineConfig& config() const noexcept { return config_; }

  /// One-shot convenience: construct, feed everything, finish.
  [[nodiscard]] static PipelineResult run(const PipelineConfig& config,
                                          const std::vector<trace::ConnRecord>& records);

 private:
  struct Shard;

  void flush_batches();

  PipelineConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<trace::ConnRecord>> pending_;  ///< per-shard batch buffers
  std::unique_ptr<support::ThreadPool> pool_;
  std::uint64_t records_fed_ = 0;
  support::Stopwatch stopwatch_;
  bool finished_ = false;
};

}  // namespace worms::fleet
