// Fleet-scale streaming containment pipeline.
//
// The paper's containment scheme is an *online* mechanism: per-host distinct-
// destination counters that flag a host at f·M and remove it at the scan
// limit M, with counters reset every containment cycle.  The offline
// TraceAnalyzer::audit_policy replays a sorted in-memory trace through one
// policy instance; this subsystem is the production shape of the same
// decision procedure — a sharded, multi-threaded pipeline that ingests a
// stream of trace::ConnRecord and emits quarantine verdicts plus operational
// metrics while the stream is still flowing.
//
// Architecture (DESIGN.md §6):
//
//   ingest thread ──feed()──► per-shard batch buffers
//        │ shard = (source_host % kCompactBanks) % shards — bank-colocated
//        │ routing: every host of a shared-pool bank lands on one shard, and
//        │ for the power-of-two shard counts the tests sweep this equals the
//        │ classic source_host % shards.
//        ▼
//   BoundedMpscQueue<batch> × N     (blocking backpressure, high-water gauges)
//        ▼
//   shard worker × N: per-host {DistinctCounter, cycle, verdict} state
//        driving one core::ScanCountLimitPolicy per shard (Attempts mode —
//        distinctness is already judged by the counter backend)
//        ▼
//   finish(): close queues, join workers, merge per-shard verdicts sorted by
//        host id, snapshot metrics.
//
// Determinism: records are sharded by source host and each queue is FIFO, so
// every host's records are processed in arrival order by exactly one worker,
// against state only that worker touches.  Per-host outcomes therefore never
// depend on the shard count or on scheduling, and the merged, host-sorted
// ContainmentVerdicts report is bit-identical for any `shards` value —
// verified in tests/fleet_pipeline_test.cpp (including under TSan).
//
// Fault tolerance (DESIGN.md §7): the counters must survive a containment
// cycle measured in weeks, so the pipeline is built to degrade and recover
// rather than abort:
//
//   * checkpoint/restore — write_checkpoint() quiesces the shards and writes
//     a versioned, checksummed snapshot of every host's full state (exact
//     sets or HLL registers, cycle indices, verdicts) plus the stream
//     position; restore() resumes mid-cycle such that checkpoint + replay of
//     the record suffix is bit-identical to an uninterrupted run, for any
//     shard count and either counter backend.
//   * dead-letter quarantine — malformed, per-host out-of-order, and
//     duplicate records are routed to a bounded DeadLetterChannel (per-reason
//     counters, optional spill file) instead of aborting the stream.
//   * overload degradation — per-shard watermarks walk a ladder
//     healthy → degraded → shedding under sustained backpressure: degraded
//     shards may auto-switch exact counters to fixed-memory HLL sketches;
//     shedding drops only records of already-removed hosts (which the worker
//     would suppress anyway), never a countable scan.
//   * fault injection — a fleet::FaultPlan kills/stalls/degrades workers and
//     corrupts records at scripted stream positions so every recovery path
//     above is exercised deterministically by tests.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/scan_limit_policy.hpp"
#include "fleet/dead_letter.hpp"
#include "fleet/distinct_counter.hpp"
#include "fleet/fault_plan.hpp"
#include "obs/metrics.hpp"
#include "support/stopwatch.hpp"
#include "trace/record.hpp"

namespace worms::support {
class ThreadPool;
}

namespace worms::obs {
class EventLog;
class EventWriter;
class Registry;
class Tracer;
class TraceRing;
}  // namespace worms::obs

namespace worms::trace {
class RecordSource;
}  // namespace worms::trace

namespace worms::fleet {

/// Overload ladder position of one shard, sampled by the ingest thread at
/// every batch push.
enum class ShardHealth : std::uint8_t { Healthy, Degraded, Shedding };

[[nodiscard]] const char* to_string(ShardHealth health) noexcept;

/// Watermark policy driving the overload ladder.  Fill fractions are of the
/// shard queue's capacity; `sustain_pushes` consecutive hot samples escalate,
/// the same number of cool samples recover.
struct OverloadPolicy {
  double degrade_watermark = 0.75;  ///< fill fraction that counts as hot
  double shed_watermark = 0.95;     ///< fill fraction that counts as critical
  unsigned sustain_pushes = 8;      ///< consecutive samples before a transition
  /// Degraded shards convert per-host counters exact→HLL (memory relief).
  /// Off by default: the switch point depends on queue timing, so enabling it
  /// trades the pipeline's bit-identical determinism for bounded memory.
  /// Deterministic degradation is available via FaultPlan's degrade clauses.
  bool auto_degrade_backend = false;
};

/// Shard-queue transport.  Spsc is the default: the ingest thread is the
/// only producer and each shard worker the only consumer, so the lock-free
/// ring (fleet/spsc_ring.hpp) carries batches without a mutex in sight.
/// Mpsc selects the classic mutex/condvar BoundedMpscQueue — same contract,
/// kept for A/B benchmarking and as the conservative fallback.  Verdicts are
/// bit-identical across transports (both are per-shard FIFO).
enum class Transport : std::uint8_t { Spsc, Mpsc };

/// All pipeline knobs in one designated-initializer struct (the
/// MonteCarloOptions idiom): `ContainmentPipeline({.policy = ..., .shards =
/// 4})`.  `validate()` checks every cross-field precondition and is called
/// by the pipeline constructor; call it yourself to fail fast at config
/// parse time.
struct PipelineOptions {
  /// Budget M, cycle length, and check fraction f.  `counting` is ignored:
  /// the pipeline always counts distinct destinations, via `backend`.
  core::ScanCountLimitPolicy::Config policy;
  CounterBackend backend = CounterBackend::Exact;
  int hll_precision = 12;      ///< 2^p bytes/host, ~1.04/sqrt(2^p) rel. error
  /// Shared register pool geometry for CounterBackend::Compact (a few bits
  /// per host, DESIGN.md §13).  Ignored by the other backends except as the
  /// geometry the overload ladder's final rung would degrade into.
  CompactPoolConfig compact;
  /// Connection-failure containment budget: a host whose *failed* connection
  /// attempts (ConnRecord::outcome) reach this count within one containment
  /// cycle is removed, independent of the distinct-destination budget M —
  /// the paper's observation that worm scans fail far more often than
  /// legitimate traffic.  0 disables enforcement; failures are still tallied
  /// into the verdicts either way.
  std::uint64_t failure_budget = 0;
  unsigned shards = 0;         ///< worker count; 0 = one per hardware thread
  std::size_t batch_size = 1024;     ///< records per queue item
  std::size_t queue_capacity = 64;   ///< batches per shard queue (backpressure)
  Transport transport = Transport::Spsc;  ///< shard-queue implementation

  /// Checkpointing: every `checkpoint_every` fed records, quiesce and write a
  /// snapshot to `checkpoint_path` (0 = only explicit write_checkpoint calls).
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 0;

  /// Dead-letter retention bound and optional CSV spill file.
  std::size_t dead_letter_capacity = 1024;
  std::string dead_letter_spill;

  OverloadPolicy overload;

  /// Scripted faults (empty by default): see fleet/fault_plan.hpp.
  FaultPlan faults;

  /// Observability sink (DESIGN.md §8).  Null = uninstrumented: the hot
  /// paths pay one predictable null check per record and nothing else.
  /// When set, the pipeline registers `fleet_*` counters, gauges, and
  /// histograms (and `fleet_pool_*` via the worker pool) and keeps them
  /// live while the stream flows; restore() preloads the stream-position
  /// counters so a resumed run's totals line up with an uninterrupted one.
  /// The registry must outlive the pipeline; verdict-derived metrics are
  /// folded in by finish().
  obs::Registry* metrics = nullptr;

  /// Periodic metrics export, keyed on *absolute* stream position: every
  /// `metrics_export_every` fed records (records_fed() % N == 0, the same
  /// rule maybe_auto_checkpoint uses) the registry snapshot is published
  /// atomically to `metrics_export_path`.  Because the position counts from
  /// the start of the stream — not from pipeline construction — a restored
  /// run exports at exactly the positions the uninterrupted run would have.
  /// Requires `metrics`; 0 disables.
  std::string metrics_export_path;
  std::uint64_t metrics_export_every = 0;
  bool metrics_export_json = false;  ///< JSON instead of Prometheus text

  /// Optional flight recorder (DESIGN.md §9).  Null = untraced.  When set,
  /// the pipeline claims tracer rings 0 (ingest thread), 1..shards (shard
  /// workers), and shards+1.. (pool threads) and records span/instant events
  /// along the reaction path: ingest_batch / shard_batch / checkpoint_write /
  /// checkpoint_restore / metrics_export spans, backpressure stall spans and
  /// queue-wait instants (wall-clock tracers only), and instants for health
  /// transitions, exact→HLL degrades, dead-lettered records, worker
  /// kill/respawn, and fault-plan firings.  The tracer must outlive the
  /// pipeline.
  obs::Tracer* tracer = nullptr;

  /// Optional structured event journal (DESIGN.md §14).  Null = no journal.
  /// When set, the pipeline claims event writers 0 (ingest thread) and
  /// 1..shards (shard workers) and appends one typed event per state
  /// transition on the reaction path: DegradeStep, CheckpointWrite/Restore,
  /// HostRemoved, FaultClauseFired, OverloadTransition.  Unlike the trace
  /// ring's spans, events are positions in the *stream*, so a synthetic-clock
  /// journal is byte-stable across runs and shard schedules.  The log must
  /// outlive the pipeline.  Compiled out entirely under WORMS_OBS=OFF.
  obs::EventLog* events = nullptr;

  /// Fleet identity stamped into verdicts (the CSV `node` provenance column)
  /// and the event journal.  0 for single-process runs.
  std::uint64_t node_id = 0;

  /// Removal hook for the fleet/net alert-gossip layer: invoked by a shard
  /// worker at the instant a host's removal verdict is decided by the local
  /// policy (never for restored verdicts or pre-containments, so alerts do
  /// not echo).  Runs on the worker thread with no pipeline locks held — the
  /// callee must be thread-safe and cheap (the net layer just appends to a
  /// mutex-guarded pending-alert list).
  std::function<void(std::uint32_t host, sim::SimTime removal_time)> on_removal;

  /// Throws support::PreconditionError on any invalid combination (zero
  /// batch size or queue capacity, > 1024 shards, inverted overload
  /// watermarks, a cadence without its target path/registry).  shards == 0
  /// is valid here (auto-detect); the constructor validates the resolved
  /// count.
  void validate() const;
};

/// One monitored host's outcome.  Times are trace timestamps (sim::SimTime
/// seconds), not wall clock.
struct HostVerdict {
  std::uint32_t host = 0;
  std::uint64_t records_seen = 0;     ///< records processed while the host was up
  std::uint64_t peak_distinct = 0;    ///< max counter value across cycles
  bool flagged = false;               ///< crossed f·M (only meaningful if f < 1)
  sim::SimTime flag_time = 0.0;       ///< first crossing
  bool removed = false;               ///< hit M within a cycle
  sim::SimTime removal_time = 0.0;
  /// Removed by a fleet alert (pre_contain), not by the local policy —
  /// removal_time stays 0: the block is administrative, not a trace event.
  bool pre_contained = false;
  // Connection-failure policy accounting (always tallied; enforced only when
  // PipelineOptions::failure_budget > 0).
  std::uint64_t failures_seen = 0;   ///< failed connection records, all cycles
  std::uint64_t peak_failures = 0;   ///< max failures within any one cycle
  /// Removal was decided by the failure budget, not the scan-count limit.
  bool removed_by_failures = false;

  friend bool operator==(const HostVerdict&, const HostVerdict&) = default;
};

struct ContainmentVerdicts {
  std::vector<HostVerdict> hosts;  ///< every host seen, ascending host id
  /// Provenance: the node that owned the pipeline which decided these
  /// verdicts (PipelineOptions::node_id; 0 for single-process runs).
  std::uint64_t node_id = 0;
  std::uint32_t hosts_flagged = 0;
  std::uint32_t hosts_removed = 0;
  std::uint32_t hosts_pre_contained = 0;  ///< subset of removed: blocked by alerts
  /// Subset of removed: removal decided by the connection-failure budget.
  std::uint32_t hosts_removed_by_failures = 0;

  [[nodiscard]] const HostVerdict* find(std::uint32_t host) const noexcept;
  [[nodiscard]] std::vector<std::uint32_t> removed_hosts() const;

  friend bool operator==(const ContainmentVerdicts&, const ContainmentVerdicts&) = default;
};

struct PipelineMetrics {
  std::uint64_t records_processed = 0;  ///< records ingested via feed()
  std::uint64_t records_suppressed = 0; ///< arrived after their host's removal
  double elapsed_seconds = 0.0;         ///< wall clock, construction → finish()
  double records_per_second = 0.0;
  unsigned shards = 0;
  std::vector<std::size_t> queue_high_water;  ///< per shard, in batches
  std::size_t counter_memory_bytes = 0;       ///< sum of per-host counter footprints

  // Fault-tolerance accounting.
  DeadLetterStats dead_letters;         ///< quarantined-record counters
  std::uint64_t records_shed = 0;       ///< removed-host records dropped under shedding
  std::uint64_t backend_switches = 0;   ///< ladder rungs taken, exact→HLL→compact (incl. restored)
  std::uint32_t workers_killed = 0;     ///< fault-injected worker deaths observed
  std::uint32_t workers_respawned = 0;  ///< replacement workers started
  std::uint64_t checkpoints_written = 0;
  std::uint64_t metrics_exports = 0;  ///< periodic metrics files published
  std::vector<ShardHealth> shard_health;  ///< final ladder position per shard
};

struct PipelineResult {
  ContainmentVerdicts verdicts;
  PipelineMetrics metrics;
};

/// Live point-in-time health snapshot, readable while the stream flows —
/// the payload of a fleet StatsReport frame (`wormctl status`).  Must be
/// taken from the ingest thread (the feed() thread): everything here is
/// either ingest-owned state or an atomic published by the workers.
struct PipelineStatus {
  std::uint64_t records_fed = 0;
  std::uint64_t records_shed = 0;
  std::uint64_t checkpoints_written = 0;
  /// Stream position of the most recent checkpoint/snapshot (0 = none yet).
  std::uint64_t checkpoint_position = 0;
  CounterBackend configured_backend = CounterBackend::Exact;
  std::vector<CounterBackend> shard_backend;  ///< effective rung per shard
  std::vector<ShardHealth> shard_health;      ///< overload ladder per shard
  std::vector<std::uint64_t> queue_depth;     ///< live batches queued per shard
  DeadLetterStats dead_letters;
};

class ContainmentPipeline {
 public:
  /// Spawns the shard workers immediately; feed() may be called right away.
  explicit ContainmentPipeline(const PipelineOptions& options);

  /// Joins the workers (discarding any unprocessed input) if finish() was
  /// never called.
  ~ContainmentPipeline();

  ContainmentPipeline(const ContainmentPipeline&) = delete;
  ContainmentPipeline& operator=(const ContainmentPipeline&) = delete;

  /// Ingests records in stream order.  Timestamps must be non-decreasing
  /// *per source host* (a globally time-sorted stream qualifies); violating
  /// records are routed to the dead-letter channel, not processed.  Blocks
  /// when a shard queue is full — backpressure, not data loss.
  ///
  /// The span overload is the hot path: it validates and routes whole
  /// blocks, breaking only at checkpoint/metrics cadence boundaries and
  /// fault-plan corruption indices so its observable behaviour (snapshots,
  /// exports, dead letters, verdicts) is record-for-record identical to a
  /// loop of single-record feed() calls.
  void feed(const trace::ConnRecord& record);
  void feed(std::span<const trace::ConnRecord> records);
  void feed(const std::vector<trace::ConnRecord>& records);

  /// Pulls `source` dry through the span overload, one block at a time.
  /// The whole trace never needs to be resident.
  void feed(trace::RecordSource& source);

  /// Accounts a record that never became a ConnRecord (e.g. a line the
  /// recovering CSV parser rejected) in the dead-letter channel.
  void report_malformed(std::uint64_t source_line, std::string detail);

  /// Quiesces every shard (all fed records fully processed) and writes a
  /// checkpoint snapshot atomically.  The pipeline keeps running — feed()
  /// may continue immediately after.
  void write_checkpoint(const std::string& path);

  /// Quiesces and returns the raw snapshot image write_checkpoint() would
  /// have framed into a file — the payload a serve node replicates to its
  /// checkpoint peer.  Counts toward the checkpoints-written tally exactly
  /// like a file checkpoint.
  [[nodiscard]] std::string snapshot_blob();

  /// Administratively removes hosts before (or regardless of) any policy
  /// decision — the fleet alert-gossip "immunization" path.  Ordered after
  /// everything fed so far and before everything fed later; hosts never seen
  /// get a zero-count verdict with removed = pre_contained = true.  Must be
  /// called from the ingest thread (the feed() thread); already-removed
  /// hosts are untouched.
  void pre_contain(std::span<const std::uint32_t> hosts);

  /// Rebuilds a pipeline from a snapshot written by write_checkpoint().  The
  /// config's policy/backend/precision must match the snapshot's; the shard
  /// count may differ (state is re-sharded on load).  Resume ingest at
  /// records_fed(): feeding the record suffix yields verdicts bit-identical
  /// to the uninterrupted run.
  [[nodiscard]] static std::unique_ptr<ContainmentPipeline> restore(
      const PipelineOptions& options, const std::string& path);

  /// restore() minus the file: rebuilds from a raw snapshot image as returned
  /// by snapshot_blob() — the replica promotion path, where the snapshot
  /// arrived over a checksummed wire frame instead of a checksummed file.
  [[nodiscard]] static std::unique_ptr<ContainmentPipeline> restore_from_blob(
      const PipelineOptions& options, const std::string& snapshot);

  /// Stream position: number of feed() calls so far (snapshot-restored count
  /// included) — the index the next fed record should have.
  [[nodiscard]] std::uint64_t records_fed() const noexcept { return records_fed_; }

  /// Live dead-letter accounting (also snapshotted into PipelineMetrics).
  [[nodiscard]] const DeadLetterChannel& dead_letters() const noexcept { return dead_letters_; }

  /// Live health snapshot for the fleet status plane.  Call from the ingest
  /// thread only (same contract as feed()); cheap enough to answer every
  /// StatsQuery frame without quiescing.
  [[nodiscard]] PipelineStatus status() const;

  /// Flushes, drains, joins, and reports.  Call exactly once; the pipeline
  /// cannot be fed afterwards.  Rethrows the first worker error, if any.
  [[nodiscard]] PipelineResult finish();

  [[nodiscard]] const PipelineOptions& config() const noexcept { return config_; }

  /// One-shot convenience: construct, feed everything, finish.
  [[nodiscard]] static PipelineResult run(const PipelineOptions& options,
                                          const std::vector<trace::ConnRecord>& records);
  [[nodiscard]] static PipelineResult run(const PipelineOptions& options,
                                          trace::RecordSource& source);

 private:
  struct Shard;
  struct Monitor;
  struct ShardTask;
  struct DeferWorkersTag {};

  /// Instrument handles, resolved once at construction when
  /// config.metrics is set (null handles otherwise).  Streaming counters
  /// are recorded live on the hot paths; verdict-derived ones (hosts
  /// seen/flagged/removed, post-removal records, counter memory) are added
  /// once by finish() so they are deterministic for any shard count.
  struct Obs {
    obs::Counter* ingested = nullptr;        ///< fleet_records_ingested_total
    obs::Counter* shed = nullptr;            ///< fleet_records_shed_total
    obs::Counter* suppressed = nullptr;      ///< fleet_records_suppressed_total
    obs::Counter* post_removal = nullptr;    ///< fleet_records_post_removal_total
    obs::Counter* checkpoints = nullptr;     ///< fleet_checkpoints_written_total
    obs::Counter* hosts_seen = nullptr;      ///< fleet_hosts_seen_total
    obs::Counter* hosts_flagged = nullptr;   ///< fleet_hosts_flagged_total
    obs::Counter* hosts_removed = nullptr;   ///< fleet_hosts_removed_total
    obs::Counter* hosts_pre_contained = nullptr;  ///< fleet_hosts_pre_contained_total
    obs::Counter* backend_switches = nullptr;   ///< fleet_backend_switches_total
    obs::Counter* workers_killed = nullptr;     ///< fleet_workers_killed_total
    obs::Counter* workers_respawned = nullptr;  ///< fleet_workers_respawned_total
    /// fleet_health_transitions_total{to="..."}, indexed by ShardHealth.
    std::array<obs::Counter*, 3> health_transitions{};
    obs::Histogram* checkpoint_seconds = nullptr;  ///< fleet_checkpoint_seconds
    obs::Histogram* batch_records = nullptr;       ///< fleet_batch_records
    obs::Histogram* batch_seconds = nullptr;       ///< fleet_batch_seconds
    obs::Gauge* counter_memory = nullptr;          ///< fleet_counter_memory_bytes
    std::vector<obs::Gauge*> queue_depth;       ///< fleet_queue_depth{shard="i"}
    std::vector<obs::Gauge*> queue_high_water;  ///< fleet_queue_high_water{shard="i"}
    std::vector<obs::Gauge*> shard_health;      ///< fleet_shard_health{shard="i"}
  };

  ContainmentPipeline(const PipelineOptions& options, DeferWorkersTag);

  void setup_metrics();
  void flush_ingest_counters();
  void start_workers();
  void respawn(unsigned shard_index);
  void respawn_dead_workers();
  void push_shard_task(unsigned shard_index, ShardTask task, bool sample_overload);
  void observe_overload(unsigned shard_index, double fill_fraction);
  void quiesce();
  void flush_batches();
  /// Bank-colocated routing: all hosts of one shared-pool bank map to the
  /// same shard, so a bank's register contents are independent of the shard
  /// count (what makes compact verdicts and snapshots reshard-stable).
  [[nodiscard]] unsigned shard_of(std::uint32_t host) const noexcept {
    return compact_bank_of(host) % config_.shards;
  }
  void maybe_auto_checkpoint();
  void maybe_auto_export_metrics();
  [[nodiscard]] trace::ConnRecord corrupted(const trace::ConnRecord& record,
                                            std::uint64_t index) const;
  [[nodiscard]] std::string encode_snapshot() const;
  void decode_snapshot(const std::string& payload);

  PipelineOptions config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Monitor> monitors_;
  std::vector<std::vector<trace::ConnRecord>> pending_;  ///< per-shard batch buffers
  std::vector<std::vector<std::uint64_t>> pending_indices_;  ///< stream index per pending record
  std::unique_ptr<support::ThreadPool> pool_;
  DeadLetterChannel dead_letters_;
  std::vector<std::uint64_t> corrupt_indices_;  ///< sorted fault-plan targets
  std::uint64_t records_fed_ = 0;
  std::uint64_t records_shed_ = 0;
  // Portions of records_fed_/records_shed_ already published to obs counters;
  // flush_ingest_counters() adds only the delta, once per batch boundary.
  std::uint64_t obs_ingested_flushed_ = 0;
  std::uint64_t obs_shed_flushed_ = 0;
  std::uint64_t checkpoints_written_ = 0;
  std::uint64_t last_checkpoint_position_ = 0;  ///< records_fed_ at last snapshot
  std::uint64_t metrics_exports_written_ = 0;
  std::uint32_t workers_respawned_ = 0;
  // Restored-from-snapshot baselines, folded into finish()'s metrics.
  std::uint64_t restored_suppressed_ = 0;
  std::uint64_t restored_backend_switches_ = 0;
  trace::ConnRecord last_routed_;  ///< most recent record handed to a shard
  bool has_last_routed_ = false;
  support::Stopwatch stopwatch_;
  Obs obs_;
  obs::TraceRing* trace_ = nullptr;  ///< ingest thread's flight-recorder ring
  obs::EventWriter* events_ = nullptr;  ///< ingest thread's event-journal writer
  bool finished_ = false;
};

/// Deterministic verdict export: one CSV row per host, ascending host id,
/// times printed with %.17g so equal doubles render identically — two runs
/// produce byte-identical files exactly when their verdicts are bit-identical
/// (the cross-format/cross-shard/failover determinism tests compare these).
/// Shared by `wormctl contain` and `wormctl serve`.
void write_verdicts_csv(const std::string& path, const ContainmentVerdicts& verdicts);

}  // namespace worms::fleet
